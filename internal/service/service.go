// Package service exposes the LDP aggregation server over HTTP: client
// gateways POST perturbed report streams (the internal/protocol wire
// format) into named columns; once a column is finalized the server
// answers join-size and frequency queries and exports sketches for
// persistence. It is the deployable face of the paper's server side.
//
// Columns are polymorphic over the sketch kind. A KindJoin stream feeds
// a single-attribute LDPJoinSketch column; a KindMatrix stream feeds a
// two-attribute (middle-table) matrix column, the §VI building block of
// chain joins; a KindPlus stream feeds a two-phase LDPJoinSketch+
// column (§V) — a phase-1 sample window whose frequent-item set FI is
// frozen by POST .../advance (broadcast via GET .../fi), then phase-2
// high/low group sketches keyed by that set, estimated together by
// core.EstimateJoinPlusColumns. The kind comes from the stream header,
// is persisted in the store manifest, and is enforced on every later
// request — a name claimed by one kind refuses the others. Each column also occupies a
// join-attribute slot (?attr=, default 0): attribute i's hash family
// derives from the shared seed via hashing.AttributeSeed, a join column
// aggregates under attribute attr, and a matrix column spans attributes
// (attr, attr+1). Two columns are chain-composable exactly when their
// slots are adjacent, which is what the join planner checks.
//
// Ingestion runs on the sharded streaming engine (internal/ingest):
// each request body is decoded in full (bounded by MaxStreamReports, so
// a malformed or oversized stream is rejected atomically), then fed
// through the engine's bounded queue — blocking the handler when the
// fold workers fall behind, which is the server's backpressure — and
// folded into per-shard aggregators that merge exactly on finalize.
//
// Queries: GET /v1/join?left=A&right=B answers a pairwise estimate;
// GET /v1/join?path=A,AB,BC,C runs the chain planner — ends must be
// join columns, every middle a matrix column, slots adjacent — and
// composes core.ChainEstimate across them. Finalized sketches are
// immutable, so the whole query path is lock-free: finalized columns
// resolve through an atomic copy-on-write registry, and every query
// result (pairwise, chain, frequency) is memoized in one bounded,
// sharded query cache with per-key singleflight — concurrent misses on
// the same key compute once and share the result. When the cache is
// full the oldest entry is evicted, and /v1/stats counts hits, misses,
// evictions, and coalesced computes.
//
// Federation: sketches are linear, so aggregation state built on
// different collectors merges exactly. GET /snapshot exports a column
// (join or matrix) as a SNAP-encoded snapshot, and POST /merge folds a
// snapshot from another collector into the local column, inferring the
// column's kind and attribute slot from the snapshot's seed
// fingerprint.
//
// Durability: with Options.DataDir set, every accepted report batch and
// merge is appended to a per-column write-ahead log (internal/store)
// and fsynced before the request is acknowledged, finalize persists the
// finalized SNAP and retires the column's log, and Shutdown checkpoints
// collecting columns after draining the engine. A restarted server
// replays the store through the ingestion engine, so collecting columns
// resume and finalized sketches reappear — and because aggregation
// cells are exact integers for both kinds, a recovered column finalizes
// to a sketch byte-identical to an uninterrupted run. Losing collecting
// state would mean re-collecting reports, which re-spends each user's
// privacy budget: durability is a privacy property, not just an ops
// one.
//
//	POST /v1/columns/{name}/reports    body: KindJoin, KindMatrix, or
//	                                   KindPlus report stream; ?attr=
//	                                   selects the slot (plus: always 0)
//	POST /v1/columns/{name}/advance    freeze a plus column's FI and flip
//	                                   it to phase 2 (?domain=&theta= or
//	                                   JSON {domain,theta,fi})
//	POST /v1/columns/{name}/finalize
//	POST /v1/columns/{name}/merge      body: SNAP or PSNP snapshot to fold in
//	GET  /v1/columns/{name}            column status (JSON)
//	GET  /v1/columns/{name}/fi         a plus column's frozen (or, with
//	                                   ?domain=&theta=, proposed) FI set
//	GET  /v1/columns/{name}/sketch     marshaled join sketch (octet-stream)
//	GET  /v1/columns/{name}/snapshot   SNAP/PSNP snapshot (octet-stream)
//	GET  /v1/join?left=A&right=B       pairwise join estimate (JSON);
//	                                   plus columns pair the same way
//	GET  /v1/join?path=A,AB,BC,C       chain (multi-way) join estimate
//	GET  /v1/join?ab=pL,pR,sL,sR       A/B: plain vs plus estimate over the
//	                                   same population (&truth= adds errors)
//	GET  /v1/frequency?column=A&value=7
//	GET  /v1/stats                     server counters (JSON)
//	GET  /v1/healthz
package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/protocol"
	"ldpjoin/internal/store"
)

// DefaultMaxStreamReports caps how many reports a single POST body may
// carry unless Options overrides it (4Mi reports ≈ 28 MiB of wire). The
// cap also bounds per-request memory: a request is decoded in full
// before it reaches the engine, so the rejection of a malformed stream
// stays atomic.
const DefaultMaxStreamReports = 1 << 22

// DefaultAttributes is how many join-attribute hash families the server
// derives unless Options overrides it — enough for a 4-way chain
// (attributes 0..3) out of the box.
const DefaultAttributes = 4

// DefaultQueryCacheEntries bounds the unified query cache unless
// Options overrides it. Estimates are one float (or two for a
// frequency) per entry, so the default costs a few hundred KiB at
// worst while still absorbing any realistic dashboard workload.
const DefaultQueryCacheEntries = 4096

// Options tunes the server. The zero value selects defaults.
type Options struct {
	// Ingest configures the sharded ingestion engine.
	Ingest ingest.Options
	// MaxStreamReports caps the reports accepted per request body: 0
	// selects DefaultMaxStreamReports, negative disables the cap.
	// Disabling it removes the per-request memory bound too — each
	// request buffers its decoded reports until the stream ends — so
	// leave it on unless every gateway is trusted.
	MaxStreamReports int
	// Attributes is the number of join-attribute hash families the
	// server derives (attribute 0 is the base seed's family). A chain
	// over n attributes needs Attributes >= n. 0 selects
	// DefaultAttributes.
	Attributes int
	// QueryCacheEntries caps the unified query cache (join, chain, and
	// frequency estimates): 0 selects DefaultQueryCacheEntries,
	// negative disables memoization entirely.
	QueryCacheEntries int
	// DataDir enables durability: accepted reports and merges are
	// WAL-appended under this directory before they are acknowledged,
	// finalized sketches are persisted, and a server reopened on the
	// same directory (and the same params + seed) recovers every
	// column. Empty means in-memory only, the prior behavior.
	DataDir string
	// Store tunes the column store when DataDir is set (segment
	// rotation size, fsync policy, background checkpoint triggers —
	// store.Options.CheckpointBytes / CheckpointInterval turn the
	// background checkpointer on).
	Store store.Options
	// TenantRate enables per-tenant request rate limiting: each tenant
	// (the Authorization bearer token; "anonymous" without one) gets a
	// token bucket refilled at this many requests per second. <= 0
	// disables rate limiting.
	TenantRate float64
	// TenantBurst is the token bucket's capacity when TenantRate is on;
	// < 1 selects 1.
	TenantBurst int
	// TenantEpsilonBudget caps the privacy budget each tenant may spend
	// through report ingestion: every accepted report debits the
	// column's ε, and a batch that would overrun the budget is refused
	// with 429 budget_exhausted. <= 0 disables the ledger's enforcement.
	TenantEpsilonBudget float64
}

// pendingColumn is a collecting column of one kind: exactly one of
// join/matrix/plus is set, per kind.
type pendingColumn struct {
	kind   protocol.Kind
	attr   int
	join   *ingest.Column
	matrix *ingest.MatrixColumn
	plus   *ingest.PlusColumn

	// opMu serializes a plus column's mutating requests — report
	// append+enqueue, advance, merge — so the WAL is written in
	// acceptance order. Without it, a sample batch could pass the phase
	// gate, lose the race to a concurrent advance's WAL append, and be
	// logged after the advance record — which replay would then reject.
	// Join and matrix columns never take it: their records commute.
	opMu sync.Mutex

	// walGate is the background checkpointer's exclusion point. Every
	// mutating request holds it shared across its (WAL append, enqueue)
	// pair; CheckpointNow holds it exclusively across (Rotate, settle,
	// state capture). That makes the captured state exactly the fold of
	// the rotated-out segments: no request can be between "durable in a
	// covered segment" and "visible to the capture" while the gate is
	// held, so a checkpoint can neither lose an acknowledged report nor
	// double-count one on replay. Handlers acquire opMu (plus columns)
	// before walGate, and the checkpointer takes only walGate — one
	// order, no cycles.
	walGate sync.RWMutex
}

// n returns the reports accepted so far.
func (c *pendingColumn) n() int64 {
	switch c.kind {
	case protocol.KindMatrix:
		return c.matrix.N()
	case protocol.KindPlus:
		return c.plus.N()
	}
	return c.join.N()
}

// finishedColumn is a finalized column of one kind.
type finishedColumn struct {
	kind   protocol.Kind
	attr   int
	join   *core.Sketch
	matrix *core.MatrixSketch
	plus   *core.PlusState
}

// n returns the reports the finalized sketch summarizes.
func (c *finishedColumn) n() float64 {
	switch c.kind {
	case protocol.KindMatrix:
		return c.matrix.N()
	case protocol.KindPlus:
		return c.plus.Population()
	}
	return c.join.N()
}

// Server aggregates LDP reports into named columns. It is safe for
// concurrent use; Close releases the engine workers.
//
// The read path is lock-free: finalized columns live in a copy-on-write
// registry (immutable sketches make a pointer load a complete lookup),
// query results memoize in a sharded singleflight cache that owns its
// locking, and the stats counters are atomics. The lifecycle mutex mu
// below guards only what actually mutates: the collecting-column map,
// the closed flag, and writes (never reads) of the finished registry.
type Server struct {
	params  core.Params
	matrixP core.MatrixParams
	seed    int64             // the deployment's base hash seed
	fams    []*hashing.Family // fams[i] is join attribute i's family
	// A plus column's three sketches hash under families derived from
	// the base seed (attribute 0): the phase-1 sample under the sample
	// seed, both phase-2 group sketches under the shared group seed.
	famPlusSample *hashing.Family
	famPlusGroup  *hashing.Family
	engine        *ingest.Engine
	maxStream     int
	st            *store.Store        // nil when DataDir is unset
	recovered     store.RecoveryStats // what startup replay rebuilt; read-only after New
	ckpt          *store.Checkpointer // nil unless background triggers are configured
	tenants       *tenantRegistry     // nil unless tenant limits are configured
	metrics       httpMetrics         // per-route request accounting for /metrics

	// mu is the lifecycle mutex: it guards the pending map and every
	// *write* to closed and the finished registry, so "is this name
	// pending / finalized / too late" is answered consistently by anyone
	// holding it. Reads of closed and finished go through the atomics
	// and never take it.
	mu      sync.Mutex
	closed  atomic.Bool // written under mu; read lock-free
	pending map[string]*pendingColumn

	finished  finishedRegistry // finalized columns; lock-free reads
	cache     *queryCache      // sharded, owns its locking
	snapshots counterMap       // per-column snapshot exports
	merges    counterMap       // per-column merges

	// chainValidations counts planner runs (protocol.ValidateChain over
	// a full path). Memoized chain queries skip the planner, so the
	// counter lets tests — and operators — see that they do.
	chainValidations atomic.Int64
}

// New creates a server with default options; the hash family derives
// from seed (shared with every participant).
func New(p core.Params, seed int64) (*Server, error) {
	return NewWithOptions(p, seed, Options{})
}

// NewWithOptions creates a server for the given protocol parameters,
// public hash seed, and tuning options. With Options.DataDir set it
// opens the column store and replays its state through the ingestion
// engine before returning: collecting columns resume where the last
// acknowledged request left them, finalized sketches are queryable
// immediately.
func NewWithOptions(p core.Params, seed int64, o Options) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	maxStream := o.MaxStreamReports
	if maxStream == 0 {
		maxStream = DefaultMaxStreamReports
	}
	attrs := o.Attributes
	if attrs == 0 {
		attrs = DefaultAttributes
	}
	if attrs < 2 {
		return nil, fmt.Errorf("service: need at least 2 attribute families (matrix columns span a pair), got %d", attrs)
	}
	cacheCap := o.QueryCacheEntries
	if cacheCap == 0 {
		cacheCap = DefaultQueryCacheEntries
	}
	fams := make([]*hashing.Family, attrs)
	for i := range fams {
		fams[i] = hashing.NewFamily(hashing.AttributeSeed(seed, i), p.K, p.M)
	}
	s := &Server{
		params:        p,
		matrixP:       core.MatrixParams{K: p.K, M1: p.M, M2: p.M, Epsilon: p.Epsilon},
		seed:          seed,
		fams:          fams,
		famPlusSample: hashing.NewFamily(core.PlusSampleSeed(seed), p.K, p.M),
		famPlusGroup:  hashing.NewFamily(core.PlusGroupSeed(seed), p.K, p.M),
		engine:        ingest.NewEngine(p, fams[0], o.Ingest),
		maxStream:     maxStream,
		pending:       make(map[string]*pendingColumn),
		cache:         newQueryCache(cacheCap),
		tenants: newTenantRegistry(tenantLimits{
			rate: o.TenantRate, burst: float64(o.TenantBurst), epsBudget: o.TenantEpsilonBudget,
		}),
	}
	s.finished.init()
	if o.DataDir != "" {
		st, err := store.Open(o.DataDir, p, seed, o.Store)
		if err != nil {
			s.engine.Close()
			return nil, fmt.Errorf("service: %w", err)
		}
		rec, err := st.Recover(recoverer{s})
		if err != nil {
			st.Close()
			s.engine.Close()
			return nil, fmt.Errorf("service: %w", err)
		}
		s.st = st
		s.recovered = rec
		// Recovery is done, so every column the checkpointer could name
		// exists in the pending map before the first tick can fire.
		s.ckpt = st.StartCheckpointer(s.CheckpointNow)
	}
	return s, nil
}

// recoverer folds the column store's recovered state back into the
// server: finalized snapshots restore straight into the finished
// registry, collecting state replays through the ingestion engine
// exactly like live traffic. It runs before the server serves its
// first request, so it touches the maps without locking.
type recoverer struct{ s *Server }

// col returns the in-memory column for a recovering name, creating it
// with the kind and attribute families the manifest recorded.
func (r recoverer) col(info store.ColumnInfo) (*pendingColumn, error) {
	col, ok := r.s.pending[info.Name]
	if ok {
		return col, nil
	}
	if info.Kind == protocol.KindPlus {
		if info.Attr != 0 {
			return nil, fmt.Errorf("recovered plus column %q on attribute %d; plus columns are pinned to attribute 0", info.Name, info.Attr)
		}
		col = &pendingColumn{kind: info.Kind, plus: r.s.engine.NewPlusColumn(r.s.famPlusSample, r.s.famPlusGroup)}
		r.s.pending[info.Name] = col
		return col, nil
	}
	maxAttr := info.Attr
	if info.Kind == protocol.KindMatrix {
		maxAttr++
	}
	if info.Attr < 0 || maxAttr >= len(r.s.fams) {
		return nil, fmt.Errorf("recovered column %q needs attribute %d; raise Options.Attributes (%d)",
			info.Name, maxAttr, len(r.s.fams))
	}
	col = &pendingColumn{kind: info.Kind, attr: info.Attr}
	if info.Kind == protocol.KindMatrix {
		col.matrix = r.s.engine.NewMatrixColumn(r.s.matrixP, r.s.fams[info.Attr], r.s.fams[info.Attr+1])
	} else {
		col.join = r.s.engine.NewColumnWithFamily(r.s.fams[info.Attr])
	}
	r.s.pending[info.Name] = col
	return col, nil
}

func (r recoverer) RecoverFinalized(info store.ColumnInfo, snap *protocol.Snapshot) error {
	fin := &finishedColumn{kind: info.Kind, attr: info.Attr}
	if snap.Kind == protocol.SnapshotMatrix {
		ms, err := snap.MatrixSketch()
		if err != nil {
			return err
		}
		fin.matrix = ms
	} else {
		sk, err := snap.Sketch()
		if err != nil {
			return err
		}
		fin.join = sk
	}
	// Recovery runs single-threaded before the first request, so it may
	// grow the registry's map in place instead of copy-and-swapping once
	// per recovered column.
	r.s.finished.seed(info.Name, fin)
	return nil
}

func (r recoverer) RecoverCheckpoint(info store.ColumnInfo, snap *protocol.Snapshot) error {
	return r.recoverSnapshotMerge(info, snap)
}

func (r recoverer) RecoverMerge(info store.ColumnInfo, snap *protocol.Snapshot) error {
	return r.recoverSnapshotMerge(info, snap)
}

func (r recoverer) recoverSnapshotMerge(info store.ColumnInfo, snap *protocol.Snapshot) error {
	col, err := r.col(info)
	if err != nil {
		return err
	}
	if snap.Kind == protocol.SnapshotMatrix {
		agg, err := snap.MatrixAggregator()
		if err != nil {
			return err
		}
		return col.matrix.MergeAggregator(agg)
	}
	agg, err := snap.Aggregator()
	if err != nil {
		return err
	}
	return col.join.MergeAggregator(agg)
}

func (r recoverer) RecoverReports(info store.ColumnInfo, reports []core.Report) error {
	col, err := r.col(info)
	if err != nil {
		return err
	}
	// Re-batch at the live ingest granularity: a WAL record coalesces up
	// to 2^20 reports, and folding that as a single task would serialize
	// recovery on one shard. Split, and replay fans out across the
	// engine's workers like the original traffic did (fold order cannot
	// change the result — integer cells commute). The pooled enqueue
	// recycles the decoded chunks; the sub-slice partition is safe to
	// recycle because only a chunk whose region reaches the end of the
	// decoded array can pass the pool's capacity guard (see
	// protocol.PutReportBatch).
	var batches [][]core.Report
	for len(reports) > 0 {
		n := min(protocol.DefaultBatchSize, len(reports))
		batches = append(batches, reports[:n])
		reports = reports[n:]
	}
	return col.join.EnqueueAllPooled(batches)
}

func (r recoverer) RecoverMatrixReports(info store.ColumnInfo, reports []core.MatrixReport) error {
	col, err := r.col(info)
	if err != nil {
		return err
	}
	var batches [][]core.MatrixReport
	for len(reports) > 0 {
		n := min(protocol.DefaultBatchSize, len(reports))
		batches = append(batches, reports[:n])
		reports = reports[n:]
	}
	return col.matrix.EnqueueAllPooled(batches)
}

// explicitFI normalizes a decoded FI slice for PlusColumn.Advance,
// where nil means "compute from the sample": a persisted or imported
// empty set must stay explicit, never trigger recomputation.
func explicitFI(fi []uint64) []uint64 {
	if fi == nil {
		return []uint64{}
	}
	return fi
}

func (r recoverer) RecoverPlusFinalized(info store.ColumnInfo, snap *protocol.PlusSnapshot) error {
	state, err := snap.PlusState()
	if err != nil {
		return err
	}
	r.s.finished.seed(info.Name, &finishedColumn{kind: protocol.KindPlus, attr: info.Attr, plus: state})
	return nil
}

// RecoverPlusCheckpoint restores a plus column's shutdown checkpoint:
// the composite snapshot carries the phase boundary, so an advanced
// checkpoint re-freezes the recorded (domain, θ, FI) — the covered
// advance record, not a recomputation — before its groups merge in.
func (r recoverer) RecoverPlusCheckpoint(info store.ColumnInfo, snap *protocol.PlusSnapshot) error {
	col, err := r.col(info)
	if err != nil {
		return err
	}
	if snap.Advanced && !col.plus.Advanced() {
		if _, err := col.plus.Advance(snap.Domain, snap.Theta, explicitFI(snap.FI)); err != nil {
			return err
		}
	}
	return col.plus.MergePlus(snap)
}

func (r recoverer) RecoverPlusReports(info store.ColumnInfo, group protocol.PlusGroup, reports []core.Report) error {
	col, err := r.col(info)
	if err != nil {
		return err
	}
	// Re-batch at the live ingest granularity, as in RecoverReports.
	var batches [][]core.Report
	for len(reports) > 0 {
		n := min(protocol.DefaultBatchSize, len(reports))
		batches = append(batches, reports[:n])
		reports = reports[n:]
	}
	return col.plus.EnqueueAllPooled(group, batches)
}

func (r recoverer) RecoverPlusAdvance(info store.ColumnInfo, domain uint64, theta float64, fi []uint64) error {
	col, err := r.col(info)
	if err != nil {
		return err
	}
	_, err = col.plus.Advance(domain, theta, explicitFI(fi))
	return err
}

// RecoverPlusMerge replays a logged federation merge. The WAL already
// holds an advance record ahead of any post-advance merge (the live
// merge handler appends it before the merge record), so the column's
// phase always matches by the time the merge replays.
func (r recoverer) RecoverPlusMerge(info store.ColumnInfo, snap *protocol.PlusSnapshot) error {
	col, err := r.col(info)
	if err != nil {
		return err
	}
	return col.plus.MergePlus(snap)
}

// Shutdown marks the server closed, drains and stops the ingestion
// engine, and — when the server is durable — checkpoints every
// collecting column into the store and closes it. The checkpoint runs
// after the engine drain, so it covers every acknowledged request, and
// it retires the column's WAL segments: a reopened server restores from
// the checkpoint instead of replaying the log. Because columns register
// in the pending map (under the lock that sets closed) before their
// first WAL append, the snapshot of that map taken here covers every
// column with log records — so the checkpoints also retire the records
// of requests that were cut off mid-flight and never acknowledged,
// instead of leaving them to resurrect on restart. Mutating requests and
// snapshot exports arriving afterwards are rejected with 503 rather
// than racing the shutdown; finalized columns stay queryable. Call it
// after the HTTP listener has stopped accepting requests. Shutdown is
// idempotent.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return nil
	}
	s.closed.Store(true)
	pending := make(map[string]*pendingColumn, len(s.pending))
	for name, col := range s.pending {
		pending[name] = col
	}
	s.mu.Unlock()
	// Stop the background checkpointer before draining the engine: an
	// in-flight background checkpoint finishes (Stop waits), and after
	// that nothing contends with the shutdown checkpoints below.
	s.ckpt.Stop()
	s.engine.Close()
	if s.st == nil {
		return nil
	}
	var firstErr error
	for name, col := range pending {
		var err error
		if col.kind == protocol.KindPlus {
			var snap *protocol.PlusSnapshot
			if snap, err = col.plus.Snapshot(); err == nil {
				err = s.st.CheckpointPlus(name, col.attr, snap)
			}
		} else {
			var snap *protocol.Snapshot
			if col.kind == protocol.KindMatrix {
				snap, err = col.matrix.Snapshot()
			} else {
				snap, err = col.join.Snapshot()
			}
			if err == nil {
				err = s.st.Checkpoint(name, col.attr, snap)
			}
		}
		if err == ingest.ErrFinalized {
			continue // a concurrent finalize won; the store holds its final state
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("service: checkpointing column %q: %w", name, err)
		}
	}
	if err := s.st.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close is Shutdown for callers with nowhere to report a checkpoint
// error (an unwritable disk at shutdown leaves the WAL in place, so
// recovery replays the log instead of a checkpoint — slower, not
// lossy).
func (s *Server) Close() { _ = s.Shutdown() }

// CheckpointNow cuts a background checkpoint of one collecting column
// while the server keeps serving: rotate the column's WAL, settle the
// engine so the in-memory state covers exactly the rotated-out
// segments, capture that state, and persist it as ckpt-<seq>.snap —
// after which the store deletes the covered segments, bounding what a
// recovery must replay. It is the callback the store's background
// checkpointer runs on its policy triggers, and tests (or an operator
// hook) may call it directly.
//
// The column's walGate is held exclusively from the rotate through the
// state capture — mutating requests hold it shared across their (WAL
// append, enqueue) pair, so nothing can be durable-but-uncaptured or
// captured-but-not-durable at the cut. The gate is released before the
// snapshot encodes and persists: ingest continues during the file
// write, and bytes appended meanwhile belong to the next checkpoint
// (the store's cut accounting handles that split).
//
// A column that finalizes, drains, or disappears underneath the
// attempt is a benign race — its state is (or is becoming) durable by
// a stronger mechanism — so those paths return nil rather than
// counting as checkpoint errors.
func (s *Server) CheckpointNow(name string) error {
	if s.st == nil {
		return nil
	}
	s.mu.Lock()
	col, ok := s.pending[name]
	s.mu.Unlock()
	if !ok {
		return nil // finalized (or imported) since the policy scan
	}

	col.walGate.Lock()
	covered, err := s.st.Rotate(name)
	if err != nil {
		col.walGate.Unlock()
		if errors.Is(err, store.ErrColumnFinalized) || errors.Is(err, store.ErrClosed) {
			return nil
		}
		return err
	}
	if covered == 0 {
		col.walGate.Unlock()
		return nil
	}
	var snap *protocol.Snapshot
	var plusSnap *protocol.PlusSnapshot
	switch col.kind {
	case protocol.KindPlus:
		// PlusColumn.State settles its three sketches itself.
		plusSnap, err = col.plus.State()
	case protocol.KindMatrix:
		col.matrix.Settle()
		var agg *core.MatrixAggregator
		if agg, err = col.matrix.State(); err == nil {
			snap = protocol.SnapshotOfMatrixAggregator(agg)
		}
	default:
		col.join.Settle()
		var agg *core.Aggregator
		if agg, err = col.join.State(); err == nil {
			snap = protocol.SnapshotOfAggregator(agg)
		}
	}
	col.walGate.Unlock()
	if err != nil {
		if errors.Is(err, ingest.ErrFinalized) {
			return nil // a concurrent finalize won; final.snap supersedes
		}
		return err
	}

	if col.kind == protocol.KindPlus {
		err = s.st.SaveCheckpointPlus(name, covered, plusSnap)
	} else {
		err = s.st.SaveCheckpoint(name, covered, snap)
	}
	if errors.Is(err, store.ErrColumnFinalized) || errors.Is(err, store.ErrClosed) {
		return nil
	}
	return err
}

// refuseClosed reports whether the server is closed, writing the 503 if
// so. The flag is an atomic written only under s.mu: this fast-path
// read costs no lock, while the lifecycle decisions that matter —
// registerPending's re-check, Shutdown's pending-map snapshot — read it
// under the mutex and stay exactly ordered. A request that slips past
// the check while Close runs still cannot corrupt anything: the engine
// refuses new work with ErrClosed and a drained column with
// ErrFinalized, both of which surface as clean HTTP errors.
func (s *Server) refuseClosed(w http.ResponseWriter) bool {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, codeServerClosed, "", "server is shut down")
		return true
	}
	return false
}

// Handler returns the HTTP handler serving the API above, wrapped in
// the tenant admission middleware (when configured) and the per-route
// request accounting /metrics reads.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/columns/{name}/reports", s.handleReports)
	mux.HandleFunc("POST /v1/columns/{name}/advance", s.handleAdvance)
	mux.HandleFunc("POST /v1/columns/{name}/finalize", s.handleFinalize)
	mux.HandleFunc("POST /v1/columns/{name}/merge", s.handleMerge)
	mux.HandleFunc("GET /v1/columns", s.handleColumns)
	mux.HandleFunc("GET /v1/columns/{name}/fi", s.handleFI)
	mux.HandleFunc("GET /v1/columns/{name}", s.handleStatus)
	mux.HandleFunc("GET /v1/columns/{name}/sketch", s.handleExport)
	mux.HandleFunc("GET /v1/columns/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/join", s.handleJoin)
	mux.HandleFunc("GET /v1/frequency", s.handleFrequency)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// instrument sits outside admit so throttled requests are counted
	// too; it reads the route pattern the mux stamps on the request.
	return s.instrument(s.admit(mux))
}

// attrParam parses the ?attr= slot of an ingesting request. A matrix
// column spans (attr, attr+1), so its slot must leave room for the
// right attribute.
func (s *Server) attrParam(r *http.Request, kind protocol.Kind) (int, error) {
	raw := r.URL.Query().Get("attr")
	if raw == "" {
		return 0, nil
	}
	attr, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid ?attr=%q", raw)
	}
	maxAttr := attr
	if kind == protocol.KindMatrix {
		maxAttr++
	}
	if attr < 0 || maxAttr >= len(s.fams) {
		return 0, fmt.Errorf("attribute %d out of range: the server derives %d attribute families (a matrix column spans attr and attr+1)",
			attr, len(s.fams))
	}
	return attr, nil
}

// registerPending looks up or creates the collecting column for a
// mutating request, under the same lock acquisition as the closed,
// finalized, and kind/attribute checks — before any WAL append, see
// handleReports. When it returns ok=false the HTTP error has already
// been written.
func (s *Server) registerPending(w http.ResponseWriter, name string, kind protocol.Kind, attr int) (*pendingColumn, bool) {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, codeServerClosed, "", "server is shut down")
		return nil, false
	}
	if _, done := s.finished.get(name); done {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, codeFinalized, name, "column %q is already finalized", name)
		return nil, false
	}
	col, ok := s.pending[name]
	if ok {
		if col.kind != kind || col.attr != attr {
			s.mu.Unlock()
			writeError(w, http.StatusConflict, codeConflict, name, "column %q is %s state of attribute %d, not %s state of attribute %d",
				name, col.kind.String(), col.attr, kind.String(), attr)
			return nil, false
		}
	} else {
		col = &pendingColumn{kind: kind, attr: attr}
		switch kind {
		case protocol.KindMatrix:
			col.matrix = s.engine.NewMatrixColumn(s.matrixP, s.fams[attr], s.fams[attr+1])
		case protocol.KindPlus:
			col.plus = s.engine.NewPlusColumn(s.famPlusSample, s.famPlusGroup)
		default:
			col.join = s.engine.NewColumnWithFamily(s.fams[attr])
		}
		s.pending[name] = col
	}
	s.mu.Unlock()
	return col, true
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	// Read the stream header first: its kind byte decides which column
	// kind this request feeds. Then decode the whole stream before
	// anything reaches the engine — a malformed or oversized stream
	// rejects the request atomically, so partially-applied garbage never
	// reaches a sketch.
	body := bufio.NewReader(r.Body)
	h, err := protocol.ReadHeader(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding report stream: %v", err)
		return
	}
	attr, err := s.attrParam(r, h.Kind)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h.Kind == protocol.KindMatrix {
		s.handleMatrixReports(w, r, name, attr, body, h)
		return
	}
	if h.Kind == protocol.KindPlus {
		s.handlePlusReports(w, r, name, attr, body, h)
		return
	}

	br, err := protocol.NewBatchReaderFrom(body, h, s.params)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding report stream: %v", err)
		return
	}
	batches, ok := readAllBatches(w, s, name, br.Next, br.Count)
	if !ok {
		return
	}

	// Register the column under the same lock acquisition as the
	// closed and finalized checks, *before* the WAL append. The order
	// is load-bearing twice over: a column is never created after
	// Shutdown has snapshotted the pending map (closed is re-checked
	// there, under the lock that set it), and every WAL record belongs
	// to a registered column — which is what lets the shutdown
	// checkpoint retire every record, acknowledged or not, instead of
	// leaving unacknowledged tails to resurrect on restart.
	col, ok := s.registerPending(w, name, protocol.KindJoin, attr)
	if !ok {
		return
	}
	// Reserve the batch's privacy spend against the tenant's budget
	// before anything is durable; a refused or failed ingest refunds.
	release, ok := s.debitReports(w, r, name, br.Count())
	if !ok {
		return
	}

	// Durability before acknowledgement: the decoded reports go to the
	// write-ahead log, fsynced, before anything is acked. A failed
	// append rejects the request (at worst the column registered above
	// sits empty until more reports arrive — a disk fault is an
	// operator page either way). The (append, enqueue) pair holds the
	// column's checkpoint gate shared, so a concurrent background
	// checkpoint covers both halves of this request or neither.
	col.walGate.RLock()
	if s.st != nil {
		if err := s.st.AppendReports(name, attr, batches); err != nil {
			col.walGate.RUnlock()
			release(false)
			s.storeAppendError(w, name, err)
			return
		}
	}

	// Feed the engine outside the lifecycle lock. The pooled enqueue
	// blocks when the fold workers are behind (backpressure), is atomic
	// against a concurrent finalize — the request's reports land
	// entirely before the merge or not at all — and recycles each batch
	// into the protocol pool once its fold has consumed it (the WAL
	// append above already read them).
	if err := col.join.EnqueueAllPooled(batches); err != nil {
		col.walGate.RUnlock()
		release(false)
		s.columnConflict(w, codeConflict, name, "column %q: %v", name, err)
		return
	}
	col.walGate.RUnlock()
	release(true)
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "kind": protocol.KindJoin.String(), "ingested": br.Count(), "total": col.join.N(),
	})
}

// readAllBatches drains a batch reader (join or matrix) into owned
// batches, enforcing the per-request report cap and the no-empty-stream
// rule — an empty stream (valid header, zero reports) must not create
// the column, or a typo'd name would appear as a phantom "collecting"
// column in /v1/stats forever. When it returns ok=false the HTTP error
// has already been written.
func readAllBatches[T any](w http.ResponseWriter, s *Server, name string,
	next func(int) ([]T, error), count func() int) ([][]T, bool) {
	var batches [][]T
	for {
		batch, err := next(protocol.DefaultBatchSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "decoding report stream: %v", err)
			return nil, false
		}
		if s.maxStream >= 0 && count() > s.maxStream {
			httpError(w, http.StatusRequestEntityTooLarge,
				"stream exceeds %d reports per request", s.maxStream)
			return nil, false
		}
		batches = append(batches, batch)
	}
	if count() == 0 {
		httpError(w, http.StatusBadRequest, "empty report stream for column %q", name)
		return nil, false
	}
	return batches, true
}

// handleMatrixReports is the KindMatrix branch of handleReports: the
// same decode-register-debit-log-enqueue order over the matrix column
// path.
func (s *Server) handleMatrixReports(w http.ResponseWriter, r *http.Request, name string, attr int, body *bufio.Reader, h protocol.Header) {
	br, err := protocol.NewMatrixBatchReaderFrom(body, h, s.matrixP)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding matrix report stream: %v", err)
		return
	}
	batches, ok := readAllBatches(w, s, name, br.Next, br.Count)
	if !ok {
		return
	}

	col, ok := s.registerPending(w, name, protocol.KindMatrix, attr)
	if !ok {
		return
	}
	release, ok := s.debitReports(w, r, name, br.Count())
	if !ok {
		return
	}
	col.walGate.RLock()
	if s.st != nil {
		if err := s.st.AppendMatrixReports(name, attr, batches); err != nil {
			col.walGate.RUnlock()
			release(false)
			s.storeAppendError(w, name, err)
			return
		}
	}
	if err := col.matrix.EnqueueAllPooled(batches); err != nil {
		col.walGate.RUnlock()
		release(false)
		s.columnConflict(w, codeConflict, name, "column %q: %v", name, err)
		return
	}
	col.walGate.RUnlock()
	release(true)
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "kind": protocol.KindMatrix.String(), "ingested": br.Count(), "total": col.matrix.N(),
	})
}

// handlePlusReports is the KindPlus branch of handleReports: the same
// decode-register-log-enqueue order, plus the phase gate. The gate, the
// WAL append, and the enqueue run under the column's operation mutex so
// the log is written in acceptance order — see pendingColumn.opMu.
func (s *Server) handlePlusReports(w http.ResponseWriter, r *http.Request, name string, attr int, body *bufio.Reader, h protocol.Header) {
	if attr != 0 {
		httpError(w, http.StatusBadRequest,
			"plus columns are pinned to attribute 0: their sample and group families derive from the base seed")
		return
	}
	br, group, err := protocol.NewPlusBatchReaderFrom(body, h, s.params)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding plus report stream: %v", err)
		return
	}
	batches, ok := readAllBatches(w, s, name, br.Next, br.Count)
	if !ok {
		return
	}
	col, ok := s.registerPending(w, name, protocol.KindPlus, attr)
	if !ok {
		return
	}
	// Reserve the spend before taking the column's operation lock: the
	// ledger is reserve-then-refund anyway (a failed append refunds),
	// so a group conflict below refunds the same way — and no response,
	// success or error, is ever written while opMu is held. A parked
	// client reading slowly must never wedge the column's phase
	// machinery (the PR 5 lesson, enforced by the lockio analyzer).
	release, ok := s.debitReports(w, r, name, br.Count())
	if !ok {
		return
	}
	col.opMu.Lock()
	if err := col.plus.CheckGroup(group); err != nil {
		col.opMu.Unlock()
		release(false)
		s.plusConflict(w, name, err)
		return
	}
	col.walGate.RLock()
	if s.st != nil {
		if err := s.st.AppendPlusReports(name, attr, group, batches); err != nil {
			col.walGate.RUnlock()
			col.opMu.Unlock()
			release(false)
			s.storeAppendError(w, name, err)
			return
		}
	}
	if err := col.plus.EnqueueAllPooled(group, batches); err != nil {
		col.walGate.RUnlock()
		col.opMu.Unlock()
		release(false)
		s.columnConflict(w, codeConflict, name, "column %q: %v", name, err)
		return
	}
	col.walGate.RUnlock()
	total := col.plus.N()
	col.opMu.Unlock()
	release(true)
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "kind": protocol.KindPlus.String(), "group": group.String(),
		"ingested": br.Count(), "total": total,
	})
}

// plusConflict maps a plus phase-machine error to the HTTP response:
// the column exists but is on the wrong side of its phase boundary for
// the request — a conflict, not a malformed request.
func (s *Server) plusConflict(w http.ResponseWriter, name string, err error) {
	s.columnConflict(w, codeConflict, name, "column %q: %v", name, err)
}

// advanceRequest is the JSON body of POST /v1/columns/{name}/advance.
// A nil FI asks the server to compute the set from the column's own
// phase-1 sample; an explicit FI (the federated flow, typically a union
// of per-collector proposals) installs that set instead.
type advanceRequest struct {
	Domain uint64   `json:"domain"`
	Theta  float64  `json:"theta"`
	FI     []uint64 `json:"fi"`
}

// handleAdvance drives a plus column over its phase boundary: compute
// (or adopt) the frequent-item set, persist the advance, flip the
// column to phase 2. Parameters come from the JSON body or — for the
// body-less self-computing flow — from ?domain= and ?theta=.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	var req advanceRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding advance request: %v", err)
			return
		}
	}
	q := r.URL.Query()
	if raw := q.Get("domain"); raw != "" {
		d, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid ?domain=%q", raw)
			return
		}
		req.Domain = d
	}
	if raw := q.Get("theta"); raw != "" {
		th, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid ?theta=%q", raw)
			return
		}
		req.Theta = th
	}
	if req.Domain == 0 {
		httpError(w, http.StatusBadRequest, "advance needs a positive domain (?domain= or a JSON body)")
		return
	}
	if !(req.Theta > 0 && req.Theta < 1) {
		httpError(w, http.StatusBadRequest, "advance needs a frequency threshold θ in (0,1), got %v", req.Theta)
		return
	}
	if req.FI != nil {
		// Canonicalize a coordinator-supplied set: sorted, deduplicated,
		// inside the domain — the form the WAL record and the snapshot
		// codec require.
		slices.Sort(req.FI)
		req.FI = slices.Compact(req.FI)
		if n := len(req.FI); n > 0 && req.FI[n-1] >= req.Domain {
			httpError(w, http.StatusBadRequest, "frequent item %d is outside the domain %d", req.FI[n-1], req.Domain)
			return
		}
		if len(req.FI) > protocol.MaxPlusFI {
			httpError(w, http.StatusBadRequest, "frequent-item set of %d items exceeds the %d-item bound", len(req.FI), protocol.MaxPlusFI)
			return
		}
	}

	s.mu.Lock()
	if _, done := s.finished.get(name); done {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, codeFinalized, name, "column %q is already finalized", name)
		return
	}
	col, ok := s.pending[name]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, name, "column %q has no reports", name)
		return
	}
	if col.kind != protocol.KindPlus {
		writeError(w, http.StatusConflict, codeConflict, name, "column %q is a %s column; advance applies to plus columns", name, col.kind.String())
		return
	}

	// opMu is released explicitly on every path before a response is
	// written — never held across a client socket write (lockio rule).
	col.opMu.Lock()
	// Check the phase before anything reaches the WAL: a second advance
	// record would be rejected at replay, so it must never be written.
	if col.plus.Advanced() {
		col.opMu.Unlock()
		s.plusConflict(w, name, ingest.ErrPlusAdvanced)
		return
	}
	fi := req.FI
	if fi == nil {
		var err error
		if fi, err = col.plus.ProposeFI(req.Domain, req.Theta); err != nil {
			col.opMu.Unlock()
			s.plusConflict(w, name, err)
			return
		}
	}
	// The (advance record, phase flip) pair holds the checkpoint gate
	// like a report's (append, enqueue): a background checkpoint either
	// covers the advance record and captures the advanced phase, or
	// neither.
	col.walGate.RLock()
	if s.st != nil {
		if err := s.st.AppendPlusAdvance(name, col.attr, req.Domain, req.Theta, fi); err != nil {
			col.walGate.RUnlock()
			col.opMu.Unlock()
			s.storeAppendError(w, name, err)
			return
		}
	}
	frozen, err := col.plus.Advance(req.Domain, req.Theta, explicitFI(fi))
	col.walGate.RUnlock()
	col.opMu.Unlock()
	if err != nil {
		s.plusConflict(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "advanced": true,
		"domain": req.Domain, "theta": req.Theta, "fi": explicitFI(frozen),
	})
}

// handleFI broadcasts a plus column's frequent-item set: the frozen set
// once the column has advanced (or finalized), or — for a phase-1
// column queried with ?domain= and ?theta= — a live point-in-time
// proposal, which a federation coordinator unions across collectors
// before advancing them all with the same explicit set.
func (s *Server) handleFI(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	writeFrozen := func(domain uint64, theta float64, fi []uint64, finalized bool) {
		writeJSON(w, http.StatusOK, map[string]any{
			"column": name, "advanced": true, "finalized": finalized,
			"domain": domain, "theta": theta, "fi": explicitFI(fi),
		})
	}
	if fin, ok := s.finished.get(name); ok {
		if fin.kind != protocol.KindPlus {
			writeError(w, http.StatusConflict, codeConflict, name, "column %q is a %s column; /fi applies to plus columns", name, fin.kind.String())
			return
		}
		writeFrozen(fin.plus.Domain, fin.plus.Theta, fin.plus.FI, true)
		return
	}
	s.mu.Lock()
	col, ok := s.pending[name]
	s.mu.Unlock()
	if !ok {
		if fin, ok := s.finished.get(name); ok && fin.kind == protocol.KindPlus {
			writeFrozen(fin.plus.Domain, fin.plus.Theta, fin.plus.FI, true)
			return
		}
		writeError(w, http.StatusNotFound, codeNotFound, name, "unknown column %q", name)
		return
	}
	if col.kind != protocol.KindPlus {
		writeError(w, http.StatusConflict, codeConflict, name, "column %q is a %s column; /fi applies to plus columns", name, col.kind.String())
		return
	}
	if domain, theta, fi, advanced := col.plus.AdvanceInfo(); advanced {
		writeFrozen(domain, theta, fi, false)
		return
	}
	q := r.URL.Query()
	rawD, rawT := q.Get("domain"), q.Get("theta")
	if rawD == "" || rawT == "" {
		httpError(w, http.StatusBadRequest,
			"column %q has not advanced; a live proposal needs ?domain= and ?theta=", name)
		return
	}
	domain, err := strconv.ParseUint(rawD, 10, 64)
	if err != nil || domain == 0 {
		httpError(w, http.StatusBadRequest, "invalid ?domain=%q", rawD)
		return
	}
	theta, err := strconv.ParseFloat(rawT, 64)
	if err != nil || !(theta > 0 && theta < 1) {
		httpError(w, http.StatusBadRequest, "invalid ?theta=%q (want a threshold in (0,1))", rawT)
		return
	}
	fi, err := col.plus.ProposeFI(domain, theta)
	if err != nil {
		s.plusConflict(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "advanced": false, "finalized": false,
		"domain": domain, "theta": theta, "fi": explicitFI(fi),
	})
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	s.mu.Lock()
	if _, done := s.finished.get(name); done {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, codeFinalized, name, "column %q is already finalized", name)
		return
	}
	col, ok := s.pending[name]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, name, "column %q has no reports", name)
		return
	}
	// Finalize drains the column's queued folds; do it outside the lock
	// so ingestion into other columns proceeds meanwhile. A concurrent
	// finalize of the same column loses with ErrFinalized.
	fin := &finishedColumn{kind: col.kind, attr: col.attr}
	var snap *protocol.Snapshot
	var plusSnap *protocol.PlusSnapshot
	var err error
	var n float64
	switch col.kind {
	case protocol.KindMatrix:
		fin.matrix, err = col.matrix.Finalize()
		if err == nil {
			snap, n = protocol.SnapshotOfMatrixSketch(fin.matrix), fin.matrix.N()
		}
	case protocol.KindPlus:
		fin.plus, err = col.plus.Finalize()
		if err == nil {
			plusSnap, n = protocol.PlusSnapshotOfState(fin.plus), fin.plus.Population()
		}
	default:
		fin.join, err = col.join.Finalize()
		if err == nil {
			snap, n = protocol.SnapshotOfSketch(fin.join), fin.join.N()
		}
	}
	if err == ingest.ErrFinalized {
		s.columnConflict(w, codeFinalized, name, "column %q is already finalized", name)
		return
	}
	if errors.Is(err, ingest.ErrPlusNotAdvanced) {
		// The column is untouched (the phase check precedes the drain):
		// advance it, ingest phase 2, then finalize.
		s.plusConflict(w, name, err)
		return
	}
	if err != nil {
		// The column is spent (finalized with an error); drop it so the
		// name does not stay wedged between "collecting" and "finalized".
		s.mu.Lock()
		delete(s.pending, name)
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, codeInternal, name, "finalizing column %q: %v", name, err)
		return
	}
	// Persist the finalized sketch and retire the column's WAL before
	// installing it: an acknowledged finalize is durable. If persisting
	// fails the sketch still installs — it cannot be un-finalized — but
	// the request reports the failure; the WAL stays in place, so a
	// restart rebuilds the column collecting and an identical sketch is
	// one finalize away.
	var persistErr error
	if s.st != nil {
		if col.kind == protocol.KindPlus {
			persistErr = s.st.FinalizePlus(name, col.attr, plusSnap)
		} else {
			persistErr = s.st.Finalize(name, col.attr, snap)
		}
	}
	// Retire the pending entry and publish the finalized column in one
	// critical section: a status or register request holding mu sees the
	// column in exactly one of the two maps, never neither.
	s.mu.Lock()
	delete(s.pending, name)
	s.finished.install(name, fin)
	s.mu.Unlock()
	if persistErr != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, name,
			"column %q finalized in memory, but persisting failed: %v", name, persistErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"column": name, "kind": col.kind.String(), "reports": n})
}

// finalizedStatus is the status payload of a finalized column.
func finalizedStatus(name string, fin *finishedColumn) map[string]any {
	return map[string]any{
		"column": name, "kind": fin.kind.String(), "attr": fin.attr,
		"state": "finalized", "reports": fin.n(),
	}
}

// handleStatus answers from the lock-free registry when the column is
// finalized; only a collecting column touches the lifecycle mutex, and
// then just for the map lookup — the response is encoded and written
// after the lock is released, so a slow status reader cannot stall
// ingestion.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if fin, ok := s.finished.get(name); ok {
		writeJSON(w, http.StatusOK, finalizedStatus(name, fin))
		return
	}
	s.mu.Lock()
	col, ok := s.pending[name]
	s.mu.Unlock()
	if ok {
		payload := map[string]any{
			"column": name, "kind": col.kind.String(), "attr": col.attr,
			"state": "collecting", "reports": col.n(),
		}
		if col.kind == protocol.KindPlus {
			phase := 1
			if col.plus.Advanced() {
				phase = 2
			}
			payload["phase"] = phase
		}
		writeJSON(w, http.StatusOK, payload)
		return
	}
	// A finalize can move the column between the two lookups; re-check
	// the registry before declaring the name unknown.
	if fin, ok := s.finished.get(name); ok {
		writeJSON(w, http.StatusOK, finalizedStatus(name, fin))
		return
	}
	writeError(w, http.StatusNotFound, codeNotFound, name, "unknown column %q", name)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	// Close → 503 on every mutating and export handler (the PR 3
	// contract): /snapshot refuses, so /sketch must too.
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	fin, ok := s.finished.get(name)
	if !ok {
		s.notFinalized(w, name)
		return
	}
	if fin.kind != protocol.KindJoin {
		writeError(w, http.StatusConflict, codeConflict, name, "column %q is a %s column; export it via /snapshot", name, fin.kind.String())
		return
	}
	data, err := fin.join.MarshalBinary()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding sketch: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleSnapshot exports a column as a SNAP snapshot. A collecting
// column yields a point-in-time unfinalized (mergeable) snapshot taken
// under the shard locks without consuming the column, so a federator
// can poll a live collector; a finalized column yields its finalized
// snapshot. The response carries X-Ldpjoin-Finalized so callers can
// tell the two apart without decoding.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	fin, done := s.finished.get(name)
	var col *pendingColumn
	var collecting bool
	if !done {
		s.mu.Lock()
		col, collecting = s.pending[name]
		s.mu.Unlock()
		if !collecting {
			// A finalize between the two lookups moved the column.
			fin, done = s.finished.get(name)
		}
	}

	var data []byte
	var finalized bool
	switch {
	case done:
		var err error
		switch fin.kind {
		case protocol.KindPlus:
			data, err = protocol.EncodePlusSnapshot(protocol.PlusSnapshotOfState(fin.plus))
		case protocol.KindMatrix:
			data, err = protocol.EncodeSnapshot(protocol.SnapshotOfMatrixSketch(fin.matrix))
		default:
			data, err = protocol.EncodeSnapshot(protocol.SnapshotOfSketch(fin.join))
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encoding snapshot: %v", err)
			return
		}
		finalized = true
	case collecting:
		// A concurrent finalize can retire the column between the lookup
		// and the copy; State then reports ErrFinalized and the client
		// retries against the finalized sketch.
		var err error
		switch col.kind {
		case protocol.KindPlus:
			var ps *protocol.PlusSnapshot
			if ps, err = col.plus.State(); err == nil {
				data, err = protocol.EncodePlusSnapshot(ps)
			}
		case protocol.KindMatrix:
			var agg *core.MatrixAggregator
			if agg, err = col.matrix.State(); err == nil {
				data, err = protocol.EncodeSnapshot(protocol.SnapshotOfMatrixAggregator(agg))
			}
		default:
			var agg *core.Aggregator
			if agg, err = col.join.State(); err == nil {
				data, err = protocol.EncodeSnapshot(protocol.SnapshotOfAggregator(agg))
			}
		}
		if err == ingest.ErrFinalized {
			writeError(w, http.StatusConflict, codeFinalized, name, "column %q finalized while exporting; retry", name)
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, name, "exporting column %q: %v", name, err)
			return
		}
	default:
		writeError(w, http.StatusNotFound, codeNotFound, name, "unknown column %q", name)
		return
	}
	s.snapshots.bump(name)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ldpjoin-Finalized", fmt.Sprintf("%v", finalized))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleMerge folds a snapshot from another collector into the named
// column. An unfinalized snapshot merges exactly into a collecting (or
// new) column — the same integer-cell merge the shards use, so the
// eventual sketch is byte-identical to single-node ingestion of the
// union stream. A finalized snapshot can only be installed under a name
// with no local state (import); merging into or on top of finalized
// state is refused, because that cannot be exact. The column's kind and
// attribute slot come from the snapshot's seed fingerprint.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	// Read the fixed-size header first: its kind byte picks the exact
	// body bound — a join snapshot is K·M cells, a matrix snapshot K·M²
	// (~1000× larger at defaults) — so a request is never buffered
	// beyond the size its declared kind justifies, and garbage bodies
	// are rejected after 60 bytes.
	header := make([]byte, protocol.SnapshotHeaderSize)
	if _, err := io.ReadFull(r.Body, header); err != nil {
		httpError(w, http.StatusBadRequest, "reading snapshot header: %v", err)
		return
	}
	if protocol.IsPlusSnapshot(header) {
		s.handlePlusMerge(w, r, name, header)
		return
	}
	snapKind, err := protocol.PeekSnapshotKind(header)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding snapshot: %v", err)
		return
	}
	limit := int64(protocol.SnapshotEncodedSize(s.params))
	if snapKind == protocol.SnapshotMatrix {
		limit = int64(protocol.SnapshotEncodedSizeMatrix(s.matrixP))
		// A durable merge must fit one WAL record, and a matrix snapshot
		// has no valid split. Refuse oversized configurations up front —
		// before buffering anything — with an actionable message instead
		// of a 500 from the append layer after 100s of MiB of work.
		if s.st != nil && limit > protocol.MaxRecordPayload {
			writeError(w, http.StatusConflict, codeConflict, name,
				"matrix snapshots encode to %d bytes under this configuration, above the %d-byte WAL record bound: durable matrix merges need a smaller sketch width (or an in-memory server)",
				limit, protocol.MaxRecordPayload)
			return
		}
	}
	rest, err := io.ReadAll(io.LimitReader(r.Body, limit-int64(len(header))+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading snapshot body: %v", err)
		return
	}
	data := append(header, rest...)
	if int64(len(data)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "snapshot exceeds the %d-byte bound its kind has under this configuration", limit)
		return
	}
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding snapshot: %v", err)
		return
	}
	kind, attr, err := snap.Slot(s.params, s.matrixP, s.fams)
	if err != nil {
		writeError(w, http.StatusConflict, codeConflict, name, "%v", err)
		return
	}

	if snap.Finalized {
		fin := &finishedColumn{kind: kind, attr: attr}
		if kind == protocol.KindMatrix {
			fin.matrix, err = snap.MatrixSketch()
		} else {
			fin.join, err = snap.Sketch()
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "restoring snapshot: %v", err)
			return
		}
		// Check and install under one lock acquisition: releasing the
		// lock between the no-pending check and the install would let a
		// concurrent reports request register the column in the gap —
		// and the import would then shadow (and, durable, retire the WAL
		// of) acknowledged reports. With the install atomic, the two
		// requests serialize: whichever claims the name first wins, the
		// other gets the conflict.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "server is shut down")
			return
		}
		if _, done := s.finished.get(name); done {
			s.mu.Unlock()
			writeError(w, http.StatusConflict, codeFinalized, name, "column %q is already finalized; merging finalized snapshots is not exact", name)
			return
		}
		if _, collecting := s.pending[name]; collecting {
			s.mu.Unlock()
			writeError(w, http.StatusConflict, codeConflict, name, "column %q is collecting; a finalized snapshot can only be imported under a fresh name", name)
			return
		}
		s.finished.install(name, fin)
		s.mu.Unlock()
		s.merges.bump(name)
		// An import is terminal state: persist it like a finalize. As in
		// handleFinalize, a persist failure keeps the in-memory install
		// (it cannot be undone observably) and reports the error.
		if s.st != nil {
			if err := s.st.Finalize(name, attr, snap); err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, name,
					"column %q imported in memory, but persisting failed: %v", name, err)
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"column": name, "kind": kind.String(), "merged": snap.N, "total": snap.N, "finalized": true,
		})
		return
	}

	// Same order as handleReports: register the column under the
	// closed/finalized checks, then WAL the encoded snapshot — the
	// already-encoded body is exactly the canonical record payload —
	// before it can reach the column.
	col, ok := s.registerPending(w, name, kind, attr)
	if !ok {
		return
	}
	// Decode the aggregator before taking the WAL gate: a snapshot the
	// column would reject must not be logged, and the gate should not be
	// held across decoding work.
	var magg *core.MatrixAggregator
	var jagg *core.Aggregator
	if kind == protocol.KindMatrix {
		magg, err = snap.MatrixAggregator()
	} else {
		jagg, err = snap.Aggregator()
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "restoring snapshot: %v", err)
		return
	}
	// Shared-mode gate: the (append, merge) pair must land on one side of
	// any checkpoint rotation, as in handleReports.
	col.walGate.RLock()
	if s.st != nil {
		if err := s.st.AppendMerge(name, kind, attr, data); err != nil {
			col.walGate.RUnlock()
			s.storeAppendError(w, name, err)
			return
		}
	}
	if kind == protocol.KindMatrix {
		err = col.matrix.MergeAggregator(magg)
	} else {
		err = col.join.MergeAggregator(jagg)
	}
	col.walGate.RUnlock()
	if err != nil {
		s.columnConflict(w, codeConflict, name, "merging into column %q: %v", name, err)
		return
	}
	s.merges.bump(name)
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "kind": kind.String(), "merged": snap.N, "total": col.n(), "finalized": false,
	})
}

// handlePlusMerge folds another collector's composite plus snapshot
// into the named column. An unfinalized composite merges exactly into a
// collecting (or new) plus column; the snapshot's phase must not be
// behind the column's, and when the snapshot is ahead — it advanced,
// the local column has not — the column adopts the snapshot's frozen
// (domain, θ, FI) first, durably, then merges. A finalized composite
// installs under a fresh name only, as with the other kinds.
func (s *Server) handlePlusMerge(w http.ResponseWriter, r *http.Request, name string, header []byte) {
	limit := int64(protocol.PlusSnapshotMaxEncodedSize(s.params))
	if s.st != nil && limit > protocol.MaxRecordPayload {
		// As with matrix merges: a durable merge must fit one WAL record,
		// and a composite snapshot has no valid split.
		writeError(w, http.StatusConflict, codeConflict, name,
			"plus snapshots can encode to %d bytes under this configuration, above the %d-byte WAL record bound: durable plus merges need a smaller sketch width (or an in-memory server)",
			limit, protocol.MaxRecordPayload)
		return
	}
	rest, err := io.ReadAll(io.LimitReader(r.Body, limit-int64(len(header))+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading snapshot body: %v", err)
		return
	}
	data := append(header, rest...)
	if int64(len(data)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "plus snapshot exceeds the %d-byte bound this configuration allows", limit)
		return
	}
	snap, err := protocol.DecodePlusSnapshot(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding plus snapshot: %v", err)
		return
	}
	if err := snap.CompatibleWithPlus(s.params, s.seed); err != nil {
		writeError(w, http.StatusConflict, codeConflict, name, "%v", err)
		return
	}

	if snap.Finalized {
		state, err := snap.PlusState()
		if err != nil {
			httpError(w, http.StatusBadRequest, "restoring plus snapshot: %v", err)
			return
		}
		fin := &finishedColumn{kind: protocol.KindPlus, plus: state}
		// Check and install under one lock acquisition, as in the
		// finalized import of the other kinds.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "server is shut down")
			return
		}
		if _, done := s.finished.get(name); done {
			s.mu.Unlock()
			writeError(w, http.StatusConflict, codeFinalized, name, "column %q is already finalized; merging finalized snapshots is not exact", name)
			return
		}
		if _, collecting := s.pending[name]; collecting {
			s.mu.Unlock()
			writeError(w, http.StatusConflict, codeConflict, name, "column %q is collecting; a finalized snapshot can only be imported under a fresh name", name)
			return
		}
		s.finished.install(name, fin)
		s.mu.Unlock()
		s.merges.bump(name)
		if s.st != nil {
			if err := s.st.FinalizePlus(name, 0, snap); err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, name,
					"column %q imported in memory, but persisting failed: %v", name, err)
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"column": name, "kind": protocol.KindPlus.String(), "merged": snap.N(), "total": snap.N(), "finalized": true,
		})
		return
	}

	col, ok := s.registerPending(w, name, protocol.KindPlus, 0)
	if !ok {
		return
	}
	// opMu is released explicitly on every path before a response is
	// written — never held across a client socket write (lockio rule).
	col.opMu.Lock()
	if snap.Advanced && !col.plus.Advanced() {
		// Adopt the snapshot's advance before merging — durably first,
		// so replay crosses the boundary at the same point. The WAL gate
		// keeps the (append, advance) pair on one side of any checkpoint
		// rotation.
		col.walGate.RLock()
		if s.st != nil {
			if err := s.st.AppendPlusAdvance(name, 0, snap.Domain, snap.Theta, snap.FI); err != nil {
				col.walGate.RUnlock()
				col.opMu.Unlock()
				s.storeAppendError(w, name, err)
				return
			}
		}
		_, err := col.plus.Advance(snap.Domain, snap.Theta, explicitFI(snap.FI))
		col.walGate.RUnlock()
		if err != nil {
			col.opMu.Unlock()
			s.plusConflict(w, name, err)
			return
		}
	}
	// Refuse a phase-mismatched merge before it reaches the WAL: a
	// record the in-memory column rejects must never be logged, or
	// replay would reject it too and wedge recovery. After the adoption
	// above the only mismatches left are a snapshot behind the column's
	// phase or one that froze a different FI set.
	if domain, theta, fi, advanced := col.plus.AdvanceInfo(); advanced {
		switch {
		case !snap.Advanced:
			col.opMu.Unlock()
			s.plusConflict(w, name, fmt.Errorf("%w: merging a phase-1 snapshot into a phase-2 column", ingest.ErrPlusPhase))
			return
		case snap.Domain != domain || snap.Theta != theta || !slices.Equal(snap.FI, fi):
			col.opMu.Unlock()
			writeError(w, http.StatusConflict, codeConflict, name, "column %q: plus snapshot froze a different frequent-item set than the column", name)
			return
		}
	}
	col.walGate.RLock()
	if s.st != nil {
		if err := s.st.AppendMerge(name, protocol.KindPlus, 0, data); err != nil {
			col.walGate.RUnlock()
			col.opMu.Unlock()
			s.storeAppendError(w, name, err)
			return
		}
	}
	err = col.plus.MergePlus(snap)
	col.walGate.RUnlock()
	col.opMu.Unlock()
	if err != nil {
		s.plusConflict(w, name, err)
		return
	}
	s.merges.bump(name)
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "kind": protocol.KindPlus.String(), "merged": snap.N(), "total": col.n(), "finalized": false,
	})
}

// columnConflict answers an ingest lifecycle conflict (ErrFinalized,
// ErrClosed) with the given envelope code. During shutdown those errors
// usually mean the column was drained, or the engine stopped,
// underneath the request — the column is checkpointed, not finalized —
// so a closed server answers the retryable 503 instead of a 409 a
// gateway would treat as terminal and drop its reports over.
func (s *Server) columnConflict(w http.ResponseWriter, code, column, format string, args ...any) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, codeServerClosed, "", "server is shut down")
		return
	}
	writeError(w, http.StatusConflict, code, column, format, args...)
}

// storeAppendError maps a WAL append failure to the HTTP response. A
// sealed log usually means the column is finalized (409, do not retry)
// — but during shutdown the checkpoint seals logs of columns that are
// still collecting, and telling a gateway "finalized" then would make
// it drop its reports for good. The closed flag is always set before
// any checkpoint seals, so re-checking it here reliably turns that
// case into the retryable 503.
func (s *Server) storeAppendError(w http.ResponseWriter, name string, err error) {
	if errors.Is(err, store.ErrColumnFinalized) || errors.Is(err, store.ErrClosed) {
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, codeServerClosed, "", "server is shut down")
			return
		}
		if errors.Is(err, store.ErrColumnFinalized) {
			writeError(w, http.StatusConflict, codeFinalized, name, "column %q is already finalized", name)
			return
		}
	}
	writeError(w, http.StatusInternalServerError, codeInternal, name, "persisting request for column %q: %v", name, err)
}

// notFinalized answers a query that named columns which turned out not
// to be finalized, distinguishing "not ready" from "unknown": a name
// still collecting gets 409 column_not_finalized (finalize it, or wait,
// and retry — the column exists), an unknown name 404 column_not_found.
// Unknown wins when both kinds are present: it is the error the caller
// cannot fix by waiting.
func (s *Server) notFinalized(w http.ResponseWriter, names ...string) {
	s.mu.Lock()
	var collecting, unknown []string
	for _, name := range names {
		if _, ok := s.pending[name]; ok {
			collecting = append(collecting, name)
		} else if _, ok := s.finished.get(name); !ok {
			unknown = append(unknown, name)
		}
	}
	s.mu.Unlock()
	switch {
	case len(unknown) > 0:
		writeError(w, http.StatusNotFound, codeNotFound, unknown[0],
			"unknown column(s): %s", strings.Join(unknown, ", "))
	case len(collecting) > 0:
		writeError(w, http.StatusConflict, codeNotFinalized, collecting[0],
			"column(s) still collecting: %s; finalize them before querying", strings.Join(collecting, ", "))
	default:
		// Every named column finalized between the caller's lookup and
		// ours — the query would succeed now.
		writeError(w, http.StatusConflict, codeNotFinalized, "",
			"columns finalized concurrently; retry")
	}
}

// cacheKey builds a collision-proof cache key from a query type and its
// components. Column names can contain any byte (ServeMux
// percent-decodes path values), so no separator is safe on its own —
// each component is length-prefixed instead, which makes the encoding
// injective regardless of content.
func cacheKey(typ string, parts ...string) string {
	var b strings.Builder
	b.WriteString(typ)
	for _, p := range parts {
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	return b.String()
}

func pairJoinKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return cacheKey("join", a, b)
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if path := q.Get("path"); path != "" {
		s.handleChainJoin(w, path)
		return
	}
	if ab := q.Get("ab"); ab != "" {
		s.handleABJoin(w, ab, q.Get("truth"))
		return
	}
	left := q.Get("left")
	right := q.Get("right")
	if left == "" || right == "" {
		httpError(w, http.StatusBadRequest, "join needs ?left= and ?right= columns, a ?path= chain, or an ?ab= comparison")
		return
	}
	// The whole lookup is lock-free: both columns come off the
	// copy-on-write registry, and the cache owns its own (sharded)
	// locking — a join estimate never contends with ingestion.
	finL, okL := s.finished.get(left)
	finR, okR := s.finished.get(right)
	if !okL || !okR {
		var stale []string
		if !okL {
			stale = append(stale, left)
		}
		if !okR {
			stale = append(stale, right)
		}
		s.notFinalized(w, stale...)
		return
	}
	if finL.kind == protocol.KindPlus && finR.kind == protocol.KindPlus {
		est, cached, err := s.plusJoin(left, right, finL, finR)
		if err != nil {
			// Two plus columns that exist but froze different FI sets (or
			// phases) do not compose — a conflict, not a malformed request.
			httpError(w, http.StatusConflict, "plus join: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"left": left, "right": right, "kind": protocol.KindPlus.String(),
			"estimate":     est.Estimate,
			"lowEstimate":  est.LowEstimate,
			"highEstimate": est.HighEstimate,
			"cached":       cached,
		})
		return
	}
	if finL.kind != protocol.KindJoin || finR.kind != protocol.KindJoin {
		httpError(w, http.StatusBadRequest, "pairwise join needs two join columns or two plus columns (%q is %s, %q is %s); matrix columns join via ?path=",
			left, finL.kind.String(), right, finR.kind.String())
		return
	}
	// The inner products scan K·M cells; singleflight makes N concurrent
	// misses on the same pair compute them once. Finalized sketches
	// never change, so the entry stays valid until capacity evicts it.
	v, cached, err := s.cache.do(pairJoinKey(left, right), func() (any, error) {
		return finL.join.JoinSize(finR.join), nil
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "join estimate: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"left": left, "right": right, "estimate": v.(float64), "cached": cached,
	})
}

// plusJoin computes (or recalls) the two-phase estimate of a plus
// column pair through the same memoizing cache as the plain pairs.
func (s *Server) plusJoin(left, right string, finL, finR *finishedColumn) (core.PlusJoinEstimate, bool, error) {
	v, cached, err := s.cache.do(pairJoinKey(left, right), func() (any, error) {
		est, err := core.EstimateJoinPlusColumns(finL.plus, finR.plus)
		if err != nil {
			return nil, err
		}
		return est, nil
	})
	if err != nil {
		return core.PlusJoinEstimate{}, false, err
	}
	return v.(core.PlusJoinEstimate), cached, nil
}

// handleABJoin serves the A/B accuracy comparison: ?ab= names four
// finalized columns — plainLeft,plainRight,plusLeft,plusRight — built
// from the same underlying population once as plain LDPJoinSketch state
// and once as two-phase plus state. The response carries both estimates
// and their relative difference; with ?truth= (the exact join size, for
// benchmark workloads that know it) it also reports each estimate's
// relative error, which is the number the paper's §V comparison plots.
func (s *Server) handleABJoin(w http.ResponseWriter, ab, truthRaw string) {
	parts := strings.Split(ab, ",")
	if len(parts) != 4 {
		httpError(w, http.StatusBadRequest, "?ab= needs exactly 4 columns: plainLeft,plainRight,plusLeft,plusRight")
		return
	}
	for i := range parts {
		if parts[i] = strings.TrimSpace(parts[i]); parts[i] == "" {
			httpError(w, http.StatusBadRequest, "?ab= column %d is empty", i)
			return
		}
	}
	cols := make([]*finishedColumn, 4)
	var missing []string
	for i, name := range parts {
		col, ok := s.finished.get(name)
		if !ok {
			missing = append(missing, name)
			continue
		}
		cols[i] = col
	}
	if missing != nil {
		s.notFinalized(w, missing...)
		return
	}
	if cols[0].kind != protocol.KindJoin || cols[1].kind != protocol.KindJoin {
		httpError(w, http.StatusBadRequest, "?ab= columns 1-2 must be join columns (%q is %s, %q is %s)",
			parts[0], cols[0].kind.String(), parts[1], cols[1].kind.String())
		return
	}
	if cols[2].kind != protocol.KindPlus || cols[3].kind != protocol.KindPlus {
		httpError(w, http.StatusBadRequest, "?ab= columns 3-4 must be plus columns (%q is %s, %q is %s)",
			parts[2], cols[2].kind.String(), parts[3], cols[3].kind.String())
		return
	}
	vPlain, _, err := s.cache.do(pairJoinKey(parts[0], parts[1]), func() (any, error) {
		return cols[0].join.JoinSize(cols[1].join), nil
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "plain estimate: %v", err)
		return
	}
	plain := vPlain.(float64)
	plus, _, err := s.plusJoin(parts[2], parts[3], cols[2], cols[3])
	if err != nil {
		httpError(w, http.StatusConflict, "plus estimate: %v", err)
		return
	}
	resp := map[string]any{
		"plain": map[string]any{"left": parts[0], "right": parts[1], "estimate": plain},
		"plus": map[string]any{
			"left": parts[2], "right": parts[3], "estimate": plus.Estimate,
			"lowEstimate": plus.LowEstimate, "highEstimate": plus.HighEstimate,
		},
	}
	if plain != 0 {
		resp["relativeDelta"] = (plus.Estimate - plain) / plain
	}
	if truthRaw != "" {
		truth, err := strconv.ParseFloat(truthRaw, 64)
		if err != nil || truth <= 0 {
			httpError(w, http.StatusBadRequest, "invalid ?truth=%q (want a positive join size)", truthRaw)
			return
		}
		resp["truth"] = truth
		resp["plainRelativeError"] = abs(plain-truth) / truth
		resp["plusRelativeError"] = abs(plus.Estimate-truth) / truth
	}
	writeJSON(w, http.StatusOK, resp)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// handleChainJoin is the multi-way query planner: ?path=A,AB,BC,C names
// a chain whose ends are join columns and whose middles are matrix
// columns. The planner resolves every column from the lock-free
// registry, validates the composition — kinds in end/middle position
// and attribute slots strictly adjacent, so each matrix's left family
// is its predecessor's right family — and composes core.ChainEstimate
// over the finalized sketches, memoizing the estimate under the literal
// path. All planner work lives inside the cache's compute callback: a
// memoized path was only ever stored after validating against the same
// immutable columns, so a hit returns the estimate without re-running
// the planner at all.
func (s *Server) handleChainJoin(w http.ResponseWriter, path string) {
	var names []string
	for _, part := range strings.Split(path, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	if len(names) < 3 {
		httpError(w, http.StatusBadRequest, "?path= %v", protocol.ErrChainLength)
		return
	}

	cols := make([]*finishedColumn, len(names))
	var missing []string
	for i, name := range names {
		col, ok := s.finished.get(name)
		if !ok {
			missing = append(missing, name)
			continue
		}
		cols[i] = col
	}
	if missing != nil {
		s.notFinalized(w, missing...)
		return
	}

	v, cached, err := s.cache.do(cacheKey("chain", names...), func() (any, error) {
		// The composition rules — join ends, matrix middles, attribute
		// slots advancing by one — live in protocol.ValidateChain,
		// shared with the federator so the two can never diverge.
		s.chainValidations.Add(1)
		chain := make([]protocol.ChainColumn, len(cols))
		for i, col := range cols {
			chain[i] = protocol.ChainColumn{Name: names[i], Kind: col.kind, Attr: col.attr}
		}
		if err := protocol.ValidateChain(chain); err != nil {
			return nil, err
		}
		last := len(cols) - 1
		mids := make([]*core.MatrixSketch, 0, len(cols)-2)
		for _, col := range cols[1:last] {
			mids = append(mids, col.matrix)
		}
		return core.ChainEstimate(cols[0].join, mids, cols[last].join), nil
	})
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, protocol.ErrChainOrder):
			// The columns exist and are well-formed; they just don't
			// compose — a conflict, not a malformed request.
			code = http.StatusConflict
		case errors.Is(err, errFlightAborted):
			// A coalesced waiter whose computing peer died: a server
			// fault, not a bad request.
			code = http.StatusInternalServerError
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path": names, "estimate": v.(float64), "cached": cached,
	})
}

// freqResult is the memoized value of a frequency query.
type freqResult struct {
	mean   float64
	median float64
}

func (s *Server) handleFrequency(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("column")
	valueStr := r.URL.Query().Get("value")
	value, err := strconv.ParseUint(valueStr, 10, 64)
	if name == "" || err != nil {
		httpError(w, http.StatusBadRequest, "frequency needs ?column= and a numeric ?value=")
		return
	}
	fin, ok := s.finished.get(name)
	if !ok {
		s.notFinalized(w, name)
		return
	}
	if fin.kind != protocol.KindJoin {
		httpError(w, http.StatusBadRequest, "column %q is a %s column; frequency queries need a join column", name, fin.kind.String())
		return
	}
	// A finalized sketch never changes, so the estimate is memoized
	// alongside join results in the unified query cache.
	v, cached, err := s.cache.do(cacheKey("freq", name, valueStr), func() (any, error) {
		return freqResult{mean: fin.join.Frequency(value), median: fin.join.FrequencyMedian(value)}, nil
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "frequency estimate: %v", err)
		return
	}
	res := v.(freqResult)
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "value": value,
		"estimate":       res.mean,
		"estimateMedian": res.median,
		"cached":         cached,
	})
}

// handleColumns lists every column the server knows — collecting and
// finalized — with its lifecycle state and the privacy spend its
// reports represent (each accepted report costs its contributor ε, so
// reports × ε is the column's total privacy expenditure). It stays
// readable on a closed server, like /v1/status: listing columns is how
// an operator inspects a draining node.
func (s *Server) handleColumns(w http.ResponseWriter, _ *http.Request) {
	type columnInfo struct {
		Name         string  `json:"name"`
		Kind         string  `json:"kind"`
		State        string  `json:"state"`
		Attr         int     `json:"attr"`
		Reports      float64 `json:"reports"`
		EpsilonSpent float64 `json:"epsilonSpent"`
	}
	// Snapshot both maps in one critical section so a column mid-finalize
	// appears exactly once; the reads themselves happen off-lock.
	s.mu.Lock()
	pending := make(map[string]*pendingColumn, len(s.pending))
	for name, col := range s.pending {
		pending[name] = col
	}
	view := s.finished.view()
	s.mu.Unlock()
	list := make([]columnInfo, 0, len(pending)+len(view))
	for name, col := range pending {
		n := float64(col.n())
		list = append(list, columnInfo{
			Name: name, Kind: col.kind.String(), State: "collecting",
			Attr: col.attr, Reports: n, EpsilonSpent: n * s.params.Epsilon,
		})
	}
	for name, fin := range view {
		n := fin.n()
		list = append(list, columnInfo{
			Name: name, Kind: fin.kind.String(), State: "finalized",
			Attr: fin.attr, Reports: n, EpsilonSpent: n * s.params.Epsilon,
		})
	}
	slices.SortFunc(list, func(a, b columnInfo) int { return strings.Compare(a.Name, b.Name) })
	writeJSON(w, http.StatusOK, map[string]any{"columns": list, "count": len(list)})
}

// handleStats assembles the counters without ever writing to the
// network while holding a lock: the finished count is a lock-free
// registry load, the cache and federation counters are atomics, and the
// lifecycle mutex is taken only long enough to count the pending map —
// a stalled /v1/stats reader can no longer freeze ingestion, finalize,
// or queries behind a held mutex.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	o := s.engine.Options()
	// Count both maps in one critical section: registry installs happen
	// under mu, so the pair cannot disagree — a column mid-finalize is
	// never counted as both collecting and finalized. The view itself is
	// immutable, so only the pointer load needs the lock.
	s.mu.Lock()
	collecting := len(s.pending)
	finalized := len(s.finished.view())
	s.mu.Unlock()
	// Per-column federation counters: every column that has ever served a
	// snapshot export or accepted a merge gets an entry.
	columns := make(map[string]map[string]int64)
	counters := func(name string) map[string]int64 {
		c, ok := columns[name]
		if !ok {
			c = map[string]int64{"snapshots": 0, "merges": 0}
			columns[name] = c
		}
		return c
	}
	s.snapshots.each(func(name string, n int64) { counters(name)["snapshots"] = n })
	s.merges.each(func(name string, n int64) { counters(name)["merges"] = n })
	cs := s.cache.stats()
	stats := map[string]any{
		"collecting": collecting,
		"finalized":  finalized,
		"queryCache": map[string]any{
			"size":        cs.size,
			"capacity":    cs.capacity,
			"cacheShards": cs.shards,
			"hits":        cs.hits,
			"misses":      cs.misses,
			"evictions":   cs.evictions,
			"coalesced":   cs.coalesced,
		},
		"planner": map[string]any{
			"chainValidations": s.chainValidations.Load(),
		},
		"attributes":   len(s.fams),
		"columns":      columns,
		"shards":       o.Shards,
		"matrixShards": o.MatrixShards,
		"workers":      o.Workers,
		"queue":        o.Queue,
		"queueDepth":   s.engine.QueueDepth(),
	}
	if s.tenants != nil {
		tenants := make(map[string]any)
		for _, t := range s.tenants.snapshot() {
			tenants[t.name] = map[string]any{
				"requests":       t.requests,
				"throttled":      t.throttled,
				"budgetRefusals": t.budgetRefusals,
				"epsilonSpent":   t.epsSpent,
			}
		}
		stats["tenants"] = map[string]any{
			"rate":          s.tenants.limits.rate,
			"burst":         s.tenants.limits.burst,
			"epsilonBudget": s.tenants.limits.epsBudget,
			"perTenant":     tenants,
		}
	}
	if s.st != nil {
		ss := s.st.Stats()
		stats["durability"] = map[string]any{
			"walAppends":             ss.Appends,
			"walBytes":               ss.Bytes,
			"pendingWALBytes":        ss.PendingWALBytes,
			"checkpoints":            ss.Checkpoints,
			"backgroundCheckpoints":  ss.BackgroundCheckpoints,
			"checkpointErrors":       ss.CheckpointErrors,
			"lastCheckpointUnixNano": ss.LastCheckpointUnixNano,
			"lastCheckpointNanos":    ss.LastCheckpointNanos,
			"finalized":              ss.Finalized,
			"recovered": map[string]any{
				"columns":          s.recovered.Columns,
				"finalizedColumns": s.recovered.FinalizedColumns,
				"reports":          s.recovered.Reports,
				"merges":           s.recovered.Merges,
				"checkpoints":      s.recovered.Checkpoints,
				"truncatedTails":   s.recovered.TruncatedTails,
			},
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
