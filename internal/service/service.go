// Package service exposes the LDP aggregation server over HTTP: client
// gateways POST perturbed report streams (the internal/protocol wire
// format) into named columns; once a column is finalized the server
// answers join-size and frequency queries and exports sketches for
// persistence. It is the deployable face of the paper's server side.
//
// Ingestion runs on the sharded streaming engine (internal/ingest):
// each request body is decoded in full (bounded by MaxStreamReports, so
// a malformed or oversized stream is rejected atomically), then fed
// through the engine's bounded queue — blocking the handler when the
// fold workers fall behind, which is the server's backpressure — and
// folded into per-shard aggregators that merge exactly on finalize. Finalized sketches are immutable, so join
// estimates are memoized in a query cache keyed by the (unordered)
// column pair: repeated estimates of the same pair never recompute the
// row inner products.
//
// Federation: sketches are linear, so aggregation state built on
// different collectors merges exactly. GET /snapshot exports a column as
// a SNAP-encoded snapshot (point-in-time and mergeable while the column
// is collecting, final once it is finalized), and POST /merge folds a
// snapshot from another collector into the local column — the pair that
// lets N collectors each fold a shard of the population and a federator
// combine them into the same sketch a single node would have built.
//
//	POST /v1/columns/{name}/reports    body: KindJoin report stream
//	POST /v1/columns/{name}/finalize
//	POST /v1/columns/{name}/merge      body: SNAP snapshot to fold in
//	GET  /v1/columns/{name}            column status (JSON)
//	GET  /v1/columns/{name}/sketch     marshaled sketch (octet-stream)
//	GET  /v1/columns/{name}/snapshot   SNAP snapshot (octet-stream)
//	GET  /v1/join?left=A&right=B       join estimate (JSON)
//	GET  /v1/frequency?column=A&value=7
//	GET  /v1/stats                     server counters (JSON)
//	GET  /v1/healthz
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/protocol"
)

// DefaultMaxStreamReports caps how many reports a single POST body may
// carry unless Options overrides it (4Mi reports ≈ 28 MiB of wire). The
// cap also bounds per-request memory: a request is decoded in full
// (≈ 12 bytes per report) before it reaches the engine, so the rejection
// of a malformed stream stays atomic.
const DefaultMaxStreamReports = 1 << 22

// Options tunes the server. The zero value selects defaults.
type Options struct {
	// Ingest configures the sharded ingestion engine.
	Ingest ingest.Options
	// MaxStreamReports caps the reports accepted per request body: 0
	// selects DefaultMaxStreamReports, negative disables the cap.
	// Disabling it removes the per-request memory bound too — each
	// request buffers its decoded reports until the stream ends — so
	// leave it on unless every gateway is trusted.
	MaxStreamReports int
}

// joinKey identifies an unordered column pair; the join estimator is
// symmetric, so (A,B) and (B,A) share a cache slot.
type joinKey struct{ left, right string }

func makeJoinKey(a, b string) joinKey {
	if b < a {
		a, b = b, a
	}
	return joinKey{a, b}
}

// Server aggregates LDP reports into named columns. It is safe for
// concurrent use; Close releases the engine workers.
type Server struct {
	params    core.Params
	fam       *hashing.Family
	engine    *ingest.Engine
	maxStream int

	// mu guards the column maps, the query cache, the counters, and the
	// closed flag — one lifecycle: anything that can observe or mutate a
	// column checks closed under the same lock the query cache uses.
	mu        sync.Mutex
	closed    bool
	pending   map[string]*ingest.Column
	finished  map[string]*core.Sketch
	joins     map[joinKey]float64
	hits      int64
	misses    int64
	snapshots map[string]int64
	merges    map[string]int64
}

// New creates a server with default options; the hash family derives
// from seed (shared with every participant).
func New(p core.Params, seed int64) (*Server, error) {
	return NewWithOptions(p, seed, Options{})
}

// NewWithOptions creates a server for the given protocol parameters,
// public hash seed, and tuning options.
func NewWithOptions(p core.Params, seed int64, o Options) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	maxStream := o.MaxStreamReports
	if maxStream == 0 {
		maxStream = DefaultMaxStreamReports
	}
	fam := p.NewFamily(seed)
	return &Server{
		params:    p,
		fam:       fam,
		engine:    ingest.NewEngine(p, fam, o.Ingest),
		maxStream: maxStream,
		pending:   make(map[string]*ingest.Column),
		finished:  make(map[string]*core.Sketch),
		joins:     make(map[joinKey]float64),
		snapshots: make(map[string]int64),
		merges:    make(map[string]int64),
	}, nil
}

// Close marks the server closed and drains and stops the ingestion
// engine. Mutating requests and snapshot exports arriving afterwards
// are rejected with 503 rather than racing the engine shutdown;
// finalized columns stay queryable. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.engine.Close()
}

// refuseClosed reports whether the server is closed, writing the 503 if
// so. The flag lives under s.mu — the same lock as the column maps and
// the query cache — so closing and the handlers' column lookups
// serialize on one lifecycle. A request that slips past the check while
// Close runs still cannot corrupt anything: the engine refuses new work
// with ErrClosed and a drained column with ErrFinalized, both of which
// surface as clean HTTP errors.
func (s *Server) refuseClosed(w http.ResponseWriter) bool {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		httpError(w, http.StatusServiceUnavailable, "server is shut down")
	}
	return closed
}

// Handler returns the HTTP handler serving the API above.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/columns/{name}/reports", s.handleReports)
	mux.HandleFunc("POST /v1/columns/{name}/finalize", s.handleFinalize)
	mux.HandleFunc("POST /v1/columns/{name}/merge", s.handleMerge)
	mux.HandleFunc("GET /v1/columns/{name}", s.handleStatus)
	mux.HandleFunc("GET /v1/columns/{name}/sketch", s.handleExport)
	mux.HandleFunc("GET /v1/columns/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/join", s.handleJoin)
	mux.HandleFunc("GET /v1/frequency", s.handleFrequency)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	// Decode the whole stream before anything reaches the engine: a
	// malformed or oversized stream rejects the request atomically, so
	// partially-applied garbage never reaches a sketch.
	br, err := protocol.NewBatchReader(r.Body, s.params)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding report stream: %v", err)
		return
	}
	var batches [][]core.Report
	for {
		batch, err := br.Next(protocol.DefaultBatchSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "decoding report stream: %v", err)
			return
		}
		if s.maxStream >= 0 && br.Count() > s.maxStream {
			httpError(w, http.StatusRequestEntityTooLarge,
				"stream exceeds %d reports per request", s.maxStream)
			return
		}
		batches = append(batches, batch)
	}

	s.mu.Lock()
	if _, done := s.finished[name]; done {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	col, ok := s.pending[name]
	if !ok {
		col = s.engine.NewColumn()
		s.pending[name] = col
	}
	s.mu.Unlock()

	// Feed the engine outside the lock. EnqueueAll blocks when the fold
	// workers are behind (backpressure) and is atomic against a
	// concurrent finalize: the request's reports land entirely before
	// the merge or not at all.
	if err := col.EnqueueAll(batches); err != nil {
		httpError(w, http.StatusConflict, "column %q: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "ingested": br.Count(), "total": col.N(),
	})
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	s.mu.Lock()
	if _, done := s.finished[name]; done {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	col, ok := s.pending[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "column %q has no reports", name)
		return
	}
	// Finalize drains the column's queued folds; do it outside the lock
	// so ingestion into other columns proceeds meanwhile. A concurrent
	// finalize of the same column loses with ErrFinalized.
	sk, err := col.Finalize()
	if err == ingest.ErrFinalized {
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	if err != nil {
		// The column is spent (finalized with an error); drop it so the
		// name does not stay wedged between "collecting" and "finalized".
		s.mu.Lock()
		delete(s.pending, name)
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "finalizing column %q: %v", name, err)
		return
	}
	s.mu.Lock()
	delete(s.pending, name)
	s.finished[name] = sk
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"column": name, "reports": sk.N()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	defer s.mu.Unlock()
	if sk, ok := s.finished[name]; ok {
		writeJSON(w, http.StatusOK, map[string]any{"column": name, "state": "finalized", "reports": sk.N()})
		return
	}
	if col, ok := s.pending[name]; ok {
		writeJSON(w, http.StatusOK, map[string]any{"column": name, "state": "collecting", "reports": col.N()})
		return
	}
	httpError(w, http.StatusNotFound, "unknown column %q", name)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	sk, ok := s.finished[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "column %q is not finalized", name)
		return
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding sketch: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleSnapshot exports a column as a SNAP snapshot. A collecting
// column yields a point-in-time unfinalized (mergeable) snapshot taken
// under the shard locks without consuming the column, so a federator
// can poll a live collector; a finalized column yields its finalized
// snapshot. The response carries X-Ldpjoin-Finalized so callers can
// tell the two apart without decoding.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	s.mu.Lock()
	sk, done := s.finished[name]
	col, collecting := s.pending[name]
	s.mu.Unlock()

	var snap *protocol.Snapshot
	switch {
	case done:
		snap = protocol.SnapshotOfSketch(sk)
	case collecting:
		// A concurrent finalize can retire the column between the lookup
		// and the copy; State then reports ErrFinalized and the client
		// retries against the finalized sketch.
		agg, err := col.State()
		if err == ingest.ErrFinalized {
			httpError(w, http.StatusConflict, "column %q finalized while exporting; retry", name)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "exporting column %q: %v", name, err)
			return
		}
		snap = protocol.SnapshotOfAggregator(agg)
	default:
		httpError(w, http.StatusNotFound, "unknown column %q", name)
		return
	}
	data, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding snapshot: %v", err)
		return
	}
	s.mu.Lock()
	s.snapshots[name]++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ldpjoin-Finalized", fmt.Sprintf("%v", snap.Finalized))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleMerge folds a snapshot from another collector into the named
// column. An unfinalized snapshot merges exactly into a collecting (or
// new) column — the same integer-cell merge the shards use, so the
// eventual sketch is byte-identical to single-node ingestion of the
// union stream. A finalized snapshot can only be installed under a name
// with no local state (import); merging into or on top of finalized
// state is refused, because that cannot be exact.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	// A valid snapshot for this configuration has one exact size; read at
	// most one byte more so an oversized body is rejected without
	// buffering it.
	limit := int64(protocol.SnapshotEncodedSize(s.params))
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading snapshot body: %v", err)
		return
	}
	if int64(len(data)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "snapshot exceeds %d bytes for this configuration", limit)
		return
	}
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding snapshot: %v", err)
		return
	}
	if err := snap.CompatibleWithJoin(s.params, s.fam.Seed()); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}

	if snap.Finalized {
		sk, err := snap.Sketch()
		if err != nil {
			httpError(w, http.StatusBadRequest, "restoring snapshot: %v", err)
			return
		}
		s.mu.Lock()
		if _, done := s.finished[name]; done {
			s.mu.Unlock()
			httpError(w, http.StatusConflict, "column %q is already finalized; merging finalized snapshots is not exact", name)
			return
		}
		if _, collecting := s.pending[name]; collecting {
			s.mu.Unlock()
			httpError(w, http.StatusConflict, "column %q is collecting; a finalized snapshot can only be imported under a fresh name", name)
			return
		}
		s.finished[name] = sk
		s.merges[name]++
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"column": name, "merged": snap.N, "total": snap.N, "finalized": true,
		})
		return
	}

	agg, err := snap.Aggregator()
	if err != nil {
		httpError(w, http.StatusBadRequest, "restoring snapshot: %v", err)
		return
	}
	s.mu.Lock()
	if _, done := s.finished[name]; done {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	col, ok := s.pending[name]
	if !ok {
		col = s.engine.NewColumn()
		s.pending[name] = col
	}
	s.mu.Unlock()

	if err := col.MergeAggregator(agg); err != nil {
		httpError(w, http.StatusConflict, "merging into column %q: %v", name, err)
		return
	}
	s.mu.Lock()
	s.merges[name]++
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "merged": snap.N, "total": col.N(), "finalized": false,
	})
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	left := r.URL.Query().Get("left")
	right := r.URL.Query().Get("right")
	if left == "" || right == "" {
		httpError(w, http.StatusBadRequest, "join needs ?left= and ?right= columns")
		return
	}
	key := makeJoinKey(left, right)
	s.mu.Lock()
	est, cached := s.joins[key]
	skL, okL := s.finished[left]
	skR, okR := s.finished[right]
	s.mu.Unlock()
	if !okL || !okR {
		httpError(w, http.StatusNotFound, "both columns must be finalized (left ok: %v, right ok: %v)", okL, okR)
		return
	}
	if cached {
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
	} else {
		// Compute outside the lock — the inner products scan K·M cells —
		// then memoize: finalized sketches never change, so the entry
		// stays valid for the life of the server.
		est = skL.JoinSize(skR)
		s.mu.Lock()
		s.misses++
		s.joins[key] = est
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"left": left, "right": right, "estimate": est, "cached": cached,
	})
}

func (s *Server) handleFrequency(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("column")
	valueStr := r.URL.Query().Get("value")
	value, err := strconv.ParseUint(valueStr, 10, 64)
	if name == "" || err != nil {
		httpError(w, http.StatusBadRequest, "frequency needs ?column= and a numeric ?value=")
		return
	}
	s.mu.Lock()
	sk, ok := s.finished[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "column %q is not finalized", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "value": value,
		"estimate":       sk.Frequency(value),
		"estimateMedian": sk.FrequencyMedian(value),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	o := s.engine.Options()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Per-column federation counters: every column that has ever served a
	// snapshot export or accepted a merge gets an entry.
	columns := make(map[string]map[string]int64)
	counters := func(name string) map[string]int64 {
		c, ok := columns[name]
		if !ok {
			c = map[string]int64{"snapshots": 0, "merges": 0}
			columns[name] = c
		}
		return c
	}
	for name, n := range s.snapshots {
		counters(name)["snapshots"] = n
	}
	for name, n := range s.merges {
		counters(name)["merges"] = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"collecting":      len(s.pending),
		"finalized":       len(s.finished),
		"joinCacheSize":   len(s.joins),
		"joinCacheHits":   s.hits,
		"joinCacheMisses": s.misses,
		"columns":         columns,
		"shards":          o.Shards,
		"workers":         o.Workers,
		"queue":           o.Queue,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
