// Package service exposes the LDP aggregation server over HTTP: client
// gateways POST perturbed report streams (the internal/protocol wire
// format) into named columns; once a column is finalized the server
// answers join-size and frequency queries and exports sketches for
// persistence. It is the deployable face of the paper's server side.
//
// Ingestion runs on the sharded streaming engine (internal/ingest):
// each request body is decoded in full (bounded by MaxStreamReports, so
// a malformed or oversized stream is rejected atomically), then fed
// through the engine's bounded queue — blocking the handler when the
// fold workers fall behind, which is the server's backpressure — and
// folded into per-shard aggregators that merge exactly on finalize. Finalized sketches are immutable, so join
// estimates are memoized in a query cache keyed by the (unordered)
// column pair: repeated estimates of the same pair never recompute the
// row inner products.
//
// Federation: sketches are linear, so aggregation state built on
// different collectors merges exactly. GET /snapshot exports a column as
// a SNAP-encoded snapshot (point-in-time and mergeable while the column
// is collecting, final once it is finalized), and POST /merge folds a
// snapshot from another collector into the local column — the pair that
// lets N collectors each fold a shard of the population and a federator
// combine them into the same sketch a single node would have built.
//
// Durability: with Options.DataDir set, every accepted report batch and
// merge is appended to a per-column write-ahead log (internal/store)
// and fsynced before the request is acknowledged, finalize persists the
// finalized SNAP and retires the column's log, and Shutdown checkpoints
// collecting columns after draining the engine. A restarted server
// replays the store through the ingestion engine, so collecting columns
// resume and finalized sketches reappear — and because aggregation
// cells are exact integers, a recovered column finalizes to a sketch
// byte-identical to an uninterrupted run. Losing collecting state would
// mean re-collecting reports, which re-spends each user's privacy
// budget: durability is a privacy property, not just an ops one.
//
//	POST /v1/columns/{name}/reports    body: KindJoin report stream
//	POST /v1/columns/{name}/finalize
//	POST /v1/columns/{name}/merge      body: SNAP snapshot to fold in
//	GET  /v1/columns/{name}            column status (JSON)
//	GET  /v1/columns/{name}/sketch     marshaled sketch (octet-stream)
//	GET  /v1/columns/{name}/snapshot   SNAP snapshot (octet-stream)
//	GET  /v1/join?left=A&right=B       join estimate (JSON)
//	GET  /v1/frequency?column=A&value=7
//	GET  /v1/stats                     server counters (JSON)
//	GET  /v1/healthz
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/protocol"
	"ldpjoin/internal/store"
)

// DefaultMaxStreamReports caps how many reports a single POST body may
// carry unless Options overrides it (4Mi reports ≈ 28 MiB of wire). The
// cap also bounds per-request memory: a request is decoded in full
// (≈ 12 bytes per report) before it reaches the engine, so the rejection
// of a malformed stream stays atomic.
const DefaultMaxStreamReports = 1 << 22

// Options tunes the server. The zero value selects defaults.
type Options struct {
	// Ingest configures the sharded ingestion engine.
	Ingest ingest.Options
	// MaxStreamReports caps the reports accepted per request body: 0
	// selects DefaultMaxStreamReports, negative disables the cap.
	// Disabling it removes the per-request memory bound too — each
	// request buffers its decoded reports until the stream ends — so
	// leave it on unless every gateway is trusted.
	MaxStreamReports int
	// DataDir enables durability: accepted reports and merges are
	// WAL-appended under this directory before they are acknowledged,
	// finalized sketches are persisted, and a server reopened on the
	// same directory (and the same params + seed) recovers every
	// column. Empty means in-memory only, the prior behavior.
	DataDir string
	// Store tunes the column store when DataDir is set (segment
	// rotation size, fsync policy).
	Store store.Options
}

// joinKey identifies an unordered column pair; the join estimator is
// symmetric, so (A,B) and (B,A) share a cache slot.
type joinKey struct{ left, right string }

func makeJoinKey(a, b string) joinKey {
	if b < a {
		a, b = b, a
	}
	return joinKey{a, b}
}

// Server aggregates LDP reports into named columns. It is safe for
// concurrent use; Close releases the engine workers.
type Server struct {
	params    core.Params
	fam       *hashing.Family
	engine    *ingest.Engine
	maxStream int
	st        *store.Store        // nil when DataDir is unset
	recovered store.RecoveryStats // what startup replay rebuilt; read-only after New

	// mu guards the column maps, the query cache, the counters, and the
	// closed flag — one lifecycle: anything that can observe or mutate a
	// column checks closed under the same lock the query cache uses.
	mu        sync.Mutex
	closed    bool
	pending   map[string]*ingest.Column
	finished  map[string]*core.Sketch
	joins     map[joinKey]float64
	hits      int64
	misses    int64
	snapshots map[string]int64
	merges    map[string]int64
}

// New creates a server with default options; the hash family derives
// from seed (shared with every participant).
func New(p core.Params, seed int64) (*Server, error) {
	return NewWithOptions(p, seed, Options{})
}

// NewWithOptions creates a server for the given protocol parameters,
// public hash seed, and tuning options. With Options.DataDir set it
// opens the column store and replays its state through the ingestion
// engine before returning: collecting columns resume where the last
// acknowledged request left them, finalized sketches are queryable
// immediately.
func NewWithOptions(p core.Params, seed int64, o Options) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	maxStream := o.MaxStreamReports
	if maxStream == 0 {
		maxStream = DefaultMaxStreamReports
	}
	fam := p.NewFamily(seed)
	s := &Server{
		params:    p,
		fam:       fam,
		engine:    ingest.NewEngine(p, fam, o.Ingest),
		maxStream: maxStream,
		pending:   make(map[string]*ingest.Column),
		finished:  make(map[string]*core.Sketch),
		joins:     make(map[joinKey]float64),
		snapshots: make(map[string]int64),
		merges:    make(map[string]int64),
	}
	if o.DataDir != "" {
		st, err := store.Open(o.DataDir, p, seed, o.Store)
		if err != nil {
			s.engine.Close()
			return nil, fmt.Errorf("service: %w", err)
		}
		rec, err := st.Recover(recoverer{s})
		if err != nil {
			st.Close()
			s.engine.Close()
			return nil, fmt.Errorf("service: %w", err)
		}
		s.st = st
		s.recovered = rec
	}
	return s, nil
}

// recoverer folds the column store's recovered state back into the
// server: finalized snapshots restore straight into the query maps,
// collecting state replays through the ingestion engine exactly like
// live traffic. It runs before the server serves its first request, so
// it touches the maps without locking.
type recoverer struct{ s *Server }

// col returns the in-memory column for a recovering name, creating it
// on first use.
func (r recoverer) col(name string) *ingest.Column {
	col, ok := r.s.pending[name]
	if !ok {
		col = r.s.engine.NewColumn()
		r.s.pending[name] = col
	}
	return col
}

func (r recoverer) RecoverFinalized(name string, snap *protocol.Snapshot) error {
	sk, err := snap.Sketch()
	if err != nil {
		return err
	}
	r.s.finished[name] = sk
	return nil
}

func (r recoverer) RecoverCheckpoint(name string, snap *protocol.Snapshot) error {
	agg, err := snap.Aggregator()
	if err != nil {
		return err
	}
	return r.col(name).MergeAggregator(agg)
}

func (r recoverer) RecoverReports(name string, reports []core.Report) error {
	// Re-batch at the live ingest granularity: a WAL record coalesces up
	// to 2^20 reports, and folding that as a single task would serialize
	// recovery on one shard. Split, and replay fans out across the
	// engine's workers like the original traffic did (fold order cannot
	// change the result — integer cells commute).
	var batches [][]core.Report
	for len(reports) > 0 {
		n := min(protocol.DefaultBatchSize, len(reports))
		batches = append(batches, reports[:n])
		reports = reports[n:]
	}
	return r.col(name).EnqueueAll(batches)
}

func (r recoverer) RecoverMerge(name string, snap *protocol.Snapshot) error {
	agg, err := snap.Aggregator()
	if err != nil {
		return err
	}
	return r.col(name).MergeAggregator(agg)
}

// Shutdown marks the server closed, drains and stops the ingestion
// engine, and — when the server is durable — checkpoints every
// collecting column into the store and closes it. The checkpoint runs
// after the engine drain, so it covers every acknowledged request, and
// it retires the column's WAL segments: a reopened server restores from
// the checkpoint instead of replaying the log. Because columns register
// in the pending map (under the lock that sets closed) before their
// first WAL append, the snapshot of that map taken here covers every
// column with log records — so the checkpoints also retire the records
// of requests that were cut off mid-flight and never acknowledged,
// instead of leaving them to resurrect on restart. Mutating requests and
// snapshot exports arriving afterwards are rejected with 503 rather
// than racing the shutdown; finalized columns stay queryable. Call it
// after the HTTP listener has stopped accepting requests. Shutdown is
// idempotent.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	pending := make(map[string]*ingest.Column, len(s.pending))
	for name, col := range s.pending {
		pending[name] = col
	}
	s.mu.Unlock()
	s.engine.Close()
	if s.st == nil {
		return nil
	}
	var firstErr error
	for name, col := range pending {
		snap, err := col.Snapshot()
		if err == ingest.ErrFinalized {
			continue // a concurrent finalize won; the store holds its final state
		}
		if err == nil {
			err = s.st.Checkpoint(name, snap)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("service: checkpointing column %q: %w", name, err)
		}
	}
	if err := s.st.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close is Shutdown for callers with nowhere to report a checkpoint
// error (an unwritable disk at shutdown leaves the WAL in place, so
// recovery replays the log instead of a checkpoint — slower, not
// lossy).
func (s *Server) Close() { _ = s.Shutdown() }

// refuseClosed reports whether the server is closed, writing the 503 if
// so. The flag lives under s.mu — the same lock as the column maps and
// the query cache — so closing and the handlers' column lookups
// serialize on one lifecycle. A request that slips past the check while
// Close runs still cannot corrupt anything: the engine refuses new work
// with ErrClosed and a drained column with ErrFinalized, both of which
// surface as clean HTTP errors.
func (s *Server) refuseClosed(w http.ResponseWriter) bool {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		httpError(w, http.StatusServiceUnavailable, "server is shut down")
	}
	return closed
}

// Handler returns the HTTP handler serving the API above.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/columns/{name}/reports", s.handleReports)
	mux.HandleFunc("POST /v1/columns/{name}/finalize", s.handleFinalize)
	mux.HandleFunc("POST /v1/columns/{name}/merge", s.handleMerge)
	mux.HandleFunc("GET /v1/columns/{name}", s.handleStatus)
	mux.HandleFunc("GET /v1/columns/{name}/sketch", s.handleExport)
	mux.HandleFunc("GET /v1/columns/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/join", s.handleJoin)
	mux.HandleFunc("GET /v1/frequency", s.handleFrequency)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	// Decode the whole stream before anything reaches the engine: a
	// malformed or oversized stream rejects the request atomically, so
	// partially-applied garbage never reaches a sketch.
	br, err := protocol.NewBatchReader(r.Body, s.params)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding report stream: %v", err)
		return
	}
	var batches [][]core.Report
	for {
		batch, err := br.Next(protocol.DefaultBatchSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "decoding report stream: %v", err)
			return
		}
		if s.maxStream >= 0 && br.Count() > s.maxStream {
			httpError(w, http.StatusRequestEntityTooLarge,
				"stream exceeds %d reports per request", s.maxStream)
			return
		}
		batches = append(batches, batch)
	}
	// An empty stream (valid header, zero reports) must not create the
	// column: a typo'd name would otherwise appear as a phantom
	// "collecting" column in /v1/stats forever.
	if br.Count() == 0 {
		httpError(w, http.StatusBadRequest, "empty report stream for column %q", name)
		return
	}

	// Register the column under the same lock acquisition as the
	// closed and finalized checks, *before* the WAL append. The order
	// is load-bearing twice over: a column is never created after
	// Shutdown has snapshotted the pending map (closed is re-checked
	// here, under the lock that set it), and every WAL record belongs
	// to a registered column — which is what lets the shutdown
	// checkpoint retire every record, acknowledged or not, instead of
	// leaving unacknowledged tails to resurrect on restart.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shut down")
		return
	}
	if _, done := s.finished[name]; done {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	col, ok := s.pending[name]
	if !ok {
		col = s.engine.NewColumn()
		s.pending[name] = col
	}
	s.mu.Unlock()

	// Durability before acknowledgement: the decoded reports go to the
	// write-ahead log, fsynced, before anything is acked. A failed
	// append rejects the request (at worst the column registered above
	// sits empty until more reports arrive — a disk fault is an
	// operator page either way).
	if s.st != nil {
		if err := s.st.AppendReports(name, batches); err != nil {
			s.storeAppendError(w, name, err)
			return
		}
	}

	// Feed the engine outside the lock. EnqueueAll blocks when the fold
	// workers are behind (backpressure) and is atomic against a
	// concurrent finalize: the request's reports land entirely before
	// the merge or not at all.
	if err := col.EnqueueAll(batches); err != nil {
		s.columnConflict(w, "column %q: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "ingested": br.Count(), "total": col.N(),
	})
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	s.mu.Lock()
	if _, done := s.finished[name]; done {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	col, ok := s.pending[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "column %q has no reports", name)
		return
	}
	// Finalize drains the column's queued folds; do it outside the lock
	// so ingestion into other columns proceeds meanwhile. A concurrent
	// finalize of the same column loses with ErrFinalized.
	sk, err := col.Finalize()
	if err == ingest.ErrFinalized {
		s.columnConflict(w, "column %q is already finalized", name)
		return
	}
	if err != nil {
		// The column is spent (finalized with an error); drop it so the
		// name does not stay wedged between "collecting" and "finalized".
		s.mu.Lock()
		delete(s.pending, name)
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "finalizing column %q: %v", name, err)
		return
	}
	// Persist the finalized sketch and retire the column's WAL before
	// installing it: an acknowledged finalize is durable. If persisting
	// fails the sketch still installs — it cannot be un-finalized — but
	// the request reports the failure; the WAL stays in place, so a
	// restart rebuilds the column collecting and an identical sketch is
	// one finalize away.
	var persistErr error
	if s.st != nil {
		persistErr = s.st.Finalize(name, protocol.SnapshotOfSketch(sk))
	}
	s.mu.Lock()
	delete(s.pending, name)
	s.finished[name] = sk
	s.mu.Unlock()
	if persistErr != nil {
		httpError(w, http.StatusInternalServerError,
			"column %q finalized in memory, but persisting failed: %v", name, persistErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"column": name, "reports": sk.N()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	defer s.mu.Unlock()
	if sk, ok := s.finished[name]; ok {
		writeJSON(w, http.StatusOK, map[string]any{"column": name, "state": "finalized", "reports": sk.N()})
		return
	}
	if col, ok := s.pending[name]; ok {
		writeJSON(w, http.StatusOK, map[string]any{"column": name, "state": "collecting", "reports": col.N()})
		return
	}
	httpError(w, http.StatusNotFound, "unknown column %q", name)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	sk, ok := s.finished[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "column %q is not finalized", name)
		return
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding sketch: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleSnapshot exports a column as a SNAP snapshot. A collecting
// column yields a point-in-time unfinalized (mergeable) snapshot taken
// under the shard locks without consuming the column, so a federator
// can poll a live collector; a finalized column yields its finalized
// snapshot. The response carries X-Ldpjoin-Finalized so callers can
// tell the two apart without decoding.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	s.mu.Lock()
	sk, done := s.finished[name]
	col, collecting := s.pending[name]
	s.mu.Unlock()

	var snap *protocol.Snapshot
	switch {
	case done:
		snap = protocol.SnapshotOfSketch(sk)
	case collecting:
		// A concurrent finalize can retire the column between the lookup
		// and the copy; State then reports ErrFinalized and the client
		// retries against the finalized sketch.
		agg, err := col.State()
		if err == ingest.ErrFinalized {
			httpError(w, http.StatusConflict, "column %q finalized while exporting; retry", name)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "exporting column %q: %v", name, err)
			return
		}
		snap = protocol.SnapshotOfAggregator(agg)
	default:
		httpError(w, http.StatusNotFound, "unknown column %q", name)
		return
	}
	data, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding snapshot: %v", err)
		return
	}
	s.mu.Lock()
	s.snapshots[name]++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ldpjoin-Finalized", fmt.Sprintf("%v", snap.Finalized))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleMerge folds a snapshot from another collector into the named
// column. An unfinalized snapshot merges exactly into a collecting (or
// new) column — the same integer-cell merge the shards use, so the
// eventual sketch is byte-identical to single-node ingestion of the
// union stream. A finalized snapshot can only be installed under a name
// with no local state (import); merging into or on top of finalized
// state is refused, because that cannot be exact.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if s.refuseClosed(w) {
		return
	}
	name := r.PathValue("name")
	// A valid snapshot for this configuration has one exact size; read at
	// most one byte more so an oversized body is rejected without
	// buffering it.
	limit := int64(protocol.SnapshotEncodedSize(s.params))
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading snapshot body: %v", err)
		return
	}
	if int64(len(data)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "snapshot exceeds %d bytes for this configuration", limit)
		return
	}
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding snapshot: %v", err)
		return
	}
	if err := snap.CompatibleWithJoin(s.params, s.fam.Seed()); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}

	if snap.Finalized {
		sk, err := snap.Sketch()
		if err != nil {
			httpError(w, http.StatusBadRequest, "restoring snapshot: %v", err)
			return
		}
		// Check and install under one lock acquisition: releasing the
		// lock between the no-pending check and the install would let a
		// concurrent reports request register the column in the gap —
		// and the import would then shadow (and, durable, retire the WAL
		// of) acknowledged reports. With the install atomic, the two
		// requests serialize: whichever claims the name first wins, the
		// other gets the conflict.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "server is shut down")
			return
		}
		if _, done := s.finished[name]; done {
			s.mu.Unlock()
			httpError(w, http.StatusConflict, "column %q is already finalized; merging finalized snapshots is not exact", name)
			return
		}
		if _, collecting := s.pending[name]; collecting {
			s.mu.Unlock()
			httpError(w, http.StatusConflict, "column %q is collecting; a finalized snapshot can only be imported under a fresh name", name)
			return
		}
		s.finished[name] = sk
		s.merges[name]++
		s.mu.Unlock()
		// An import is terminal state: persist it like a finalize. As in
		// handleFinalize, a persist failure keeps the in-memory install
		// (it cannot be undone observably) and reports the error.
		if s.st != nil {
			if err := s.st.Finalize(name, snap); err != nil {
				httpError(w, http.StatusInternalServerError,
					"column %q imported in memory, but persisting failed: %v", name, err)
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"column": name, "merged": snap.N, "total": snap.N, "finalized": true,
		})
		return
	}

	agg, err := snap.Aggregator()
	if err != nil {
		httpError(w, http.StatusBadRequest, "restoring snapshot: %v", err)
		return
	}
	// Same order as handleReports: register the column under the
	// closed/finalized checks, then WAL the encoded snapshot — the
	// already-encoded body is exactly the canonical record payload —
	// before it can reach the column.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shut down")
		return
	}
	if _, done := s.finished[name]; done {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	col, ok := s.pending[name]
	if !ok {
		col = s.engine.NewColumn()
		s.pending[name] = col
	}
	s.mu.Unlock()
	if s.st != nil {
		if err := s.st.AppendMerge(name, data); err != nil {
			s.storeAppendError(w, name, err)
			return
		}
	}

	if err := col.MergeAggregator(agg); err != nil {
		s.columnConflict(w, "merging into column %q: %v", name, err)
		return
	}
	s.mu.Lock()
	s.merges[name]++
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "merged": snap.N, "total": col.N(), "finalized": false,
	})
}

// columnConflict answers an ingest lifecycle conflict (ErrFinalized,
// ErrClosed). During shutdown those errors usually mean the column was
// drained, or the engine stopped, underneath the request — the column
// is checkpointed, not finalized — so a closed server answers the
// retryable 503 instead of a 409 a gateway would treat as terminal and
// drop its reports over.
func (s *Server) columnConflict(w http.ResponseWriter, format string, args ...any) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		httpError(w, http.StatusServiceUnavailable, "server is shut down")
		return
	}
	httpError(w, http.StatusConflict, format, args...)
}

// storeAppendError maps a WAL append failure to the HTTP response. A
// sealed log usually means the column is finalized (409, do not retry)
// — but during shutdown the checkpoint seals logs of columns that are
// still collecting, and telling a gateway "finalized" then would make
// it drop its reports for good. The closed flag is always set before
// any checkpoint seals, so re-checking it here reliably turns that
// case into the retryable 503.
func (s *Server) storeAppendError(w http.ResponseWriter, name string, err error) {
	if errors.Is(err, store.ErrColumnFinalized) || errors.Is(err, store.ErrClosed) {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			httpError(w, http.StatusServiceUnavailable, "server is shut down")
			return
		}
		if errors.Is(err, store.ErrColumnFinalized) {
			httpError(w, http.StatusConflict, "column %q is already finalized", name)
			return
		}
	}
	httpError(w, http.StatusInternalServerError, "persisting request for column %q: %v", name, err)
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	left := r.URL.Query().Get("left")
	right := r.URL.Query().Get("right")
	if left == "" || right == "" {
		httpError(w, http.StatusBadRequest, "join needs ?left= and ?right= columns")
		return
	}
	key := makeJoinKey(left, right)
	s.mu.Lock()
	est, cached := s.joins[key]
	skL, okL := s.finished[left]
	skR, okR := s.finished[right]
	if cached && okL && okR {
		// Bump the hit counter inside the lookup's critical section
		// instead of re-acquiring the lock just for bookkeeping.
		s.hits++
	}
	s.mu.Unlock()
	if !okL || !okR {
		httpError(w, http.StatusNotFound, "both columns must be finalized (left ok: %v, right ok: %v)", okL, okR)
		return
	}
	if !cached {
		// Compute outside the lock — the inner products scan K·M cells —
		// then memoize: finalized sketches never change, so the entry
		// stays valid for the life of the server.
		est = skL.JoinSize(skR)
		s.mu.Lock()
		s.misses++
		s.joins[key] = est
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"left": left, "right": right, "estimate": est, "cached": cached,
	})
}

func (s *Server) handleFrequency(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("column")
	valueStr := r.URL.Query().Get("value")
	value, err := strconv.ParseUint(valueStr, 10, 64)
	if name == "" || err != nil {
		httpError(w, http.StatusBadRequest, "frequency needs ?column= and a numeric ?value=")
		return
	}
	s.mu.Lock()
	sk, ok := s.finished[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "column %q is not finalized", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "value": value,
		"estimate":       sk.Frequency(value),
		"estimateMedian": sk.FrequencyMedian(value),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	o := s.engine.Options()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Per-column federation counters: every column that has ever served a
	// snapshot export or accepted a merge gets an entry.
	columns := make(map[string]map[string]int64)
	counters := func(name string) map[string]int64 {
		c, ok := columns[name]
		if !ok {
			c = map[string]int64{"snapshots": 0, "merges": 0}
			columns[name] = c
		}
		return c
	}
	for name, n := range s.snapshots {
		counters(name)["snapshots"] = n
	}
	for name, n := range s.merges {
		counters(name)["merges"] = n
	}
	stats := map[string]any{
		"collecting":      len(s.pending),
		"finalized":       len(s.finished),
		"joinCacheSize":   len(s.joins),
		"joinCacheHits":   s.hits,
		"joinCacheMisses": s.misses,
		"columns":         columns,
		"shards":          o.Shards,
		"workers":         o.Workers,
		"queue":           o.Queue,
	}
	if s.st != nil {
		ss := s.st.Stats()
		stats["durability"] = map[string]any{
			"walAppends":  ss.Appends,
			"walBytes":    ss.Bytes,
			"checkpoints": ss.Checkpoints,
			"finalized":   ss.Finalized,
			"recovered": map[string]any{
				"columns":          s.recovered.Columns,
				"finalizedColumns": s.recovered.FinalizedColumns,
				"reports":          s.recovered.Reports,
				"merges":           s.recovered.Merges,
				"checkpoints":      s.recovered.Checkpoints,
				"truncatedTails":   s.recovered.TruncatedTails,
			},
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
