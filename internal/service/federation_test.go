package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/protocol"
)

// getSnapshot pulls a column snapshot and returns the raw SNAP bytes.
func getSnapshot(t *testing.T, base, column string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/columns/" + column + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot %s/%s: %d: %s", base, column, resp.StatusCode, data)
	}
	return data
}

func getSketch(t *testing.T, base, column string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/columns/" + column + "/sketch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET sketch %s/%s: %d: %s", base, column, resp.StatusCode, data)
	}
	return data
}

// TestFederationByteIdentical is the acceptance test of the federation
// subsystem: two independent service instances each ingest half of a
// report stream, their snapshots merge into a third instance, and the
// finalized federated sketch is byte-identical — cells and all — to a
// single instance that ingested the concatenated stream, with an
// identical join estimate.
func TestFederationByteIdentical(t *testing.T) {
	_, tsA, p := testServer(t) // collector A
	_, tsB, _ := testServer(t) // collector B
	_, tsF, _ := testServer(t) // federator
	_, tsS, _ := testServer(t) // single-node reference

	usersA := dataset.Zipf(1, 6000, 800, 1.2)
	usersB := dataset.Zipf(2, 5000, 800, 1.2)
	ordersA := dataset.Zipf(3, 7000, 800, 1.1)
	ordersB := dataset.Zipf(4, 4000, 800, 1.1)

	// The wire streams: each collector gets its own half, the reference
	// gets both halves of each column (client seeds per half are fixed,
	// so the report streams are literally the same bytes).
	usersStreamA := encodeColumn(t, p, 101, usersA)
	usersStreamB := encodeColumn(t, p, 102, usersB)
	ordersStreamA := encodeColumn(t, p, 103, ordersA)
	ordersStreamB := encodeColumn(t, p, 104, ordersB)

	for _, in := range []struct {
		base, column string
		body         []byte
	}{
		{tsA.URL, "users", usersStreamA},
		{tsB.URL, "users", usersStreamB},
		{tsA.URL, "orders", ordersStreamA},
		{tsB.URL, "orders", ordersStreamB},
		{tsS.URL, "users", usersStreamA},
		{tsS.URL, "users", usersStreamB},
		{tsS.URL, "orders", ordersStreamA},
		{tsS.URL, "orders", ordersStreamB},
	} {
		if code, out := post(t, in.base+"/v1/columns/"+in.column+"/reports", in.body); code != http.StatusOK {
			t.Fatalf("ingest %s into %s: %d %v", in.column, in.base, code, out)
		}
	}

	// Federate: pull unfinalized snapshots from both collectors, merge
	// them into the federator, then finalize everything.
	for _, column := range []string{"users", "orders"} {
		for _, collector := range []string{tsA.URL, tsB.URL} {
			snap := getSnapshot(t, collector, column)
			if code, out := post(t, tsF.URL+"/v1/columns/"+column+"/merge", snap); code != http.StatusOK {
				t.Fatalf("merging %s snapshot: %d %v", column, code, out)
			}
		}
	}
	for _, base := range []string{tsF.URL, tsS.URL} {
		for _, column := range []string{"users", "orders"} {
			if code, out := post(t, base+"/v1/columns/"+column+"/finalize", nil); code != http.StatusOK {
				t.Fatalf("finalizing %s: %d %v", column, code, out)
			}
		}
	}

	// Byte-identical finalized cells...
	for _, column := range []string{"users", "orders"} {
		fed := getSketch(t, tsF.URL, column)
		single := getSketch(t, tsS.URL, column)
		if !bytes.Equal(fed, single) {
			t.Fatalf("federated %s sketch differs from single-node ingestion", column)
		}
	}
	// ...and identical join estimates.
	codeF, outF := get(t, tsF.URL+"/v1/join?left=users&right=orders")
	codeS, outS := get(t, tsS.URL+"/v1/join?left=users&right=orders")
	if codeF != http.StatusOK || codeS != http.StatusOK {
		t.Fatalf("join queries failed: %d / %d", codeF, codeS)
	}
	if outF["estimate"] != outS["estimate"] {
		t.Fatalf("federated estimate %v != single-node estimate %v", outF["estimate"], outS["estimate"])
	}
}

// TestFinalizedSnapshotExportImport: a finalized column exports a
// finalized snapshot, which imports under a fresh name on another
// instance and answers identical queries.
func TestFinalizedSnapshotExportImport(t *testing.T) {
	_, tsA, p := testServer(t)
	_, tsB, _ := testServer(t)

	data := dataset.Zipf(7, 5000, 600, 1.2)
	if code, out := post(t, tsA.URL+"/v1/columns/src/reports", encodeColumn(t, p, 7, data)); code != http.StatusOK {
		t.Fatalf("ingest: %d %v", code, out)
	}
	if code, out := post(t, tsA.URL+"/v1/columns/src/finalize", nil); code != http.StatusOK {
		t.Fatalf("finalize: %d %v", code, out)
	}
	snap := getSnapshot(t, tsA.URL, "src")
	decoded, err := protocol.DecodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Finalized {
		t.Fatal("snapshot of a finalized column should be finalized")
	}

	if code, out := post(t, tsB.URL+"/v1/columns/imported/merge", snap); code != http.StatusOK {
		t.Fatalf("import: %d %v", code, out)
	}
	if !bytes.Equal(getSketch(t, tsA.URL, "src"), getSketch(t, tsB.URL, "imported")) {
		t.Fatal("imported finalized sketch differs from the source")
	}
	// Importing on top of existing finalized state is refused.
	if code, _ := post(t, tsB.URL+"/v1/columns/imported/merge", snap); code != http.StatusConflict {
		t.Fatalf("merge onto finalized column: got %d, want 409", code)
	}
}

// TestMergeRejections covers the compatibility and lifecycle refusals
// of the merge endpoint.
func TestMergeRejections(t *testing.T) {
	_, ts, p := testServer(t)

	// Corrupt body.
	if code, _ := post(t, ts.URL+"/v1/columns/x/merge", []byte("not a snapshot")); code != http.StatusBadRequest {
		t.Fatalf("garbage body: got %d, want 400", code)
	}

	// Config mismatch: snapshot from a different hash seed.
	foreign := core.NewAggregator(p, p.NewFamily(999))
	foreignSnap, err := protocol.EncodeSnapshot(protocol.SnapshotOfAggregator(foreign))
	if err != nil {
		t.Fatal(err)
	}
	if code, out := post(t, ts.URL+"/v1/columns/x/merge", foreignSnap); code != http.StatusConflict {
		t.Fatalf("foreign-seed snapshot: got %d (%v), want 409", code, out)
	}

	// Wrong dimensions.
	small := core.Params{K: 3, M: 64, Epsilon: p.Epsilon}
	wrongDims := core.NewAggregator(small, small.NewFamily(42))
	wrongSnap, err := protocol.EncodeSnapshot(protocol.SnapshotOfAggregator(wrongDims))
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/x/merge", wrongSnap); code != http.StatusConflict {
		t.Fatalf("wrong-dims snapshot: got %d, want 409", code)
	}

	// Unfinalized merge into a finalized column.
	if code, _ := post(t, ts.URL+"/v1/columns/done/reports", encodeColumn(t, p, 8, dataset.Zipf(8, 1000, 100, 1.2))); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/done/finalize", nil); code != http.StatusOK {
		t.Fatal("finalize failed")
	}
	ok := core.NewAggregator(p, p.NewFamily(42))
	okSnap, err := protocol.EncodeSnapshot(protocol.SnapshotOfAggregator(ok))
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/done/merge", okSnap); code != http.StatusConflict {
		t.Fatalf("merge into finalized column: got %d, want 409", code)
	}
}

// TestSnapshotPointInTime: a collecting column serves an unfinalized
// snapshot without being consumed, and keeps accepting reports after.
func TestSnapshotPointInTime(t *testing.T) {
	_, ts, p := testServer(t)
	data := dataset.Zipf(9, 4000, 500, 1.2)

	if code, _ := post(t, ts.URL+"/v1/columns/live/reports", encodeColumn(t, p, 9, data)); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	snap, err := protocol.DecodeSnapshot(getSnapshot(t, ts.URL, "live"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Finalized {
		t.Fatal("collecting column exported a finalized snapshot")
	}
	// The column is still alive: more reports, then finalize.
	if code, _ := post(t, ts.URL+"/v1/columns/live/reports", encodeColumn(t, p, 10, data)); code != http.StatusOK {
		t.Fatal("ingest after snapshot failed")
	}
	if code, out := post(t, ts.URL+"/v1/columns/live/finalize", nil); code != http.StatusOK {
		t.Fatalf("finalize after snapshot: %d %v", code, out)
	}
	code, out := get(t, ts.URL+"/v1/columns/live")
	if code != http.StatusOK || out["reports"].(float64) != float64(2*len(data)) {
		t.Fatalf("column after snapshot+ingest: %d %v", code, out)
	}

	// Unknown columns 404.
	resp, err := http.Get(ts.URL + "/v1/columns/nope/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown column snapshot: got %d, want 404", resp.StatusCode)
	}
}

// TestStatsFederationCounters: /v1/stats reports per-column snapshot and
// merge counters.
func TestStatsFederationCounters(t *testing.T) {
	_, ts, p := testServer(t)
	data := dataset.Zipf(11, 2000, 300, 1.2)

	if code, _ := post(t, ts.URL+"/v1/columns/a/reports", encodeColumn(t, p, 11, data)); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	snap := getSnapshot(t, ts.URL, "a")
	getSnapshot(t, ts.URL, "a")
	if code, out := post(t, ts.URL+"/v1/columns/b/merge", snap); code != http.StatusOK {
		t.Fatalf("merge: %d %v", code, out)
	}

	code, out := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	columns, ok := out["columns"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no per-column counters: %v", out)
	}
	a := columns["a"].(map[string]any)
	b := columns["b"].(map[string]any)
	if a["snapshots"].(float64) != 2 || a["merges"].(float64) != 0 {
		t.Fatalf("column a counters: %v", a)
	}
	if b["snapshots"].(float64) != 0 || b["merges"].(float64) != 1 {
		t.Fatalf("column b counters: %v", b)
	}
}

// TestClosedServerRefusesFederation: after Close, snapshot export and
// merge (and ingestion) are rejected with 503 instead of racing the
// engine shutdown.
func TestClosedServerRefusesFederation(t *testing.T) {
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	srv, err := New(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Close)
	ts := hs.URL
	data := dataset.Zipf(12, 1000, 200, 1.2)
	if code, _ := post(t, ts+"/v1/columns/a/reports", encodeColumn(t, p, 12, data)); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	srv.Close()
	srv.Close() // idempotent

	resp, err := http.Get(ts + "/v1/columns/a/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("snapshot after Close: got %d, want 503", resp.StatusCode)
	}
	if code, _ := post(t, ts+"/v1/columns/a/merge", []byte("x")); code != http.StatusServiceUnavailable {
		t.Fatalf("merge after Close: got %d, want 503", code)
	}
	if code, _ := post(t, ts+"/v1/columns/a/reports", encodeColumn(t, p, 13, data)); code != http.StatusServiceUnavailable {
		t.Fatalf("reports after Close: got %d, want 503", code)
	}
	if code, _ := post(t, ts+"/v1/columns/a/finalize", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("finalize after Close: got %d, want 503", code)
	}
}
