package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/store"
)

// opsServer starts a durable server with aggressive background
// checkpointing (tiny byte trigger, fast tick) and optional tenant
// limits, sharing params and seed with durableServer.
func opsServer(t *testing.T, dir string, opts Options) (*Server, *httptest.Server, core.Params) {
	t.Helper()
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	opts.DataDir = dir
	srv, err := NewWithOptions(p, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, ts, p
}

// TestBackgroundCheckpointKillDuringIngest is the acceptance test of
// the background checkpointer: under sustained concurrent ingest the
// checkpointer must cut snapshots and compact covered WAL segments
// while requests keep landing — and a kill afterwards must recover by
// replaying only the records past the newest checkpoint, ending in a
// sketch byte-identical to an uninterrupted run of the same streams.
func TestBackgroundCheckpointKillDuringIngest(t *testing.T) {
	const (
		writers  = 4
		batches  = 6
		perBatch = 500
		tailSize = 250
		domain   = 400
	)
	dir := t.TempDir()
	srv, ts, p := opsServer(t, dir, Options{
		Store: store.Options{
			CheckpointBytes: 4 << 10,
			CheckpointTick:  5 * time.Millisecond,
		},
	})

	// Pre-encode every stream so the reference run can replay them.
	var streams [][]byte
	for w := 0; w < writers; w++ {
		for b := 0; b < batches; b++ {
			data := dataset.Zipf(int64(w*batches+b+1), perBatch, domain, 1.2)
			streams = append(streams, encodeColumn(t, p, int64(100+w*batches+b), data))
		}
	}

	// Stage 1: busy concurrent ingest. The byte trigger (4 KiB) is tiny
	// against ~writers*batches*perBatch report records, so background
	// checkpoints fire while these workers are still posting.
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				resp, err := http.Post(ts.URL+"/v1/columns/A/reports",
					"application/octet-stream", bytes.NewReader(streams[w*batches+b]))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("ingest batch %d/%d: status %d", w, b, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The checkpointer must have run at least once during the ingest
	// (poll briefly: the last trigger can still be in flight).
	deadline := time.Now().Add(5 * time.Second)
	for srv.st.Stats().BackgroundCheckpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no background checkpoint after busy ingest: %+v", srv.st.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if errs := srv.st.Stats().CheckpointErrors; errs != 0 {
		t.Fatalf("background checkpointer reported %d errors", errs)
	}

	// Stage 2: cut one deterministic checkpoint over the quiesced
	// column, then ingest a known tail — recovery must replay exactly
	// that tail and nothing before it.
	if err := srv.CheckpointNow("A"); err != nil {
		t.Fatal(err)
	}
	var tail [][]byte
	for i := 0; i < 2; i++ {
		data := dataset.Zipf(int64(900+i), tailSize, domain, 1.2)
		stream := encodeColumn(t, p, int64(900+i), data)
		tail = append(tail, stream)
		if code, out := post(t, ts.URL+"/v1/columns/A/reports", stream); code != 200 {
			t.Fatalf("tail ingest: %d %v", code, out)
		}
	}
	crash(t, srv, ts)

	// On disk: the newest checkpoint must have compacted every covered
	// segment — all surviving segment files sit past its sequence.
	colDirs, err := filepath.Glob(filepath.Join(dir, "col-*"))
	if err != nil || len(colDirs) != 1 {
		t.Fatalf("column dirs: %v %v", colDirs, err)
	}
	entries, err := os.ReadDir(colDirs[0])
	if err != nil {
		t.Fatal(err)
	}
	var ckptSeq, minSeg uint64
	minSeg = ^uint64(0)
	for _, e := range entries {
		name := e.Name()
		parse := func(prefix, suffix string) (uint64, bool) {
			if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
				return 0, false
			}
			n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
			return n, err == nil
		}
		if seq, ok := parse("ckpt-", ".snap"); ok && seq > ckptSeq {
			ckptSeq = seq
		}
		if seq, ok := parse("seg-", ".wal"); ok && seq < minSeg {
			minSeg = seq
		}
	}
	if ckptSeq == 0 {
		t.Fatal("no checkpoint file on disk after background checkpointing")
	}
	if minSeg <= ckptSeq {
		t.Fatalf("segment seg-%08d survives under checkpoint ckpt-%08d: covered segments were not compacted", minSeg, ckptSeq)
	}

	// Recovery replays only the tail: the checkpoint carries everything
	// the compacted segments held.
	srv2, ts2, _ := opsServer(t, dir, Options{})
	defer srv2.Close()
	defer ts2.Close()
	const total = writers*batches*perBatch + 2*tailSize
	if code, body := get(t, ts2.URL+"/v1/columns/A"); code != 200 || body["reports"].(float64) != total {
		t.Fatalf("recovered A: %d %v, want %d reports", code, body, total)
	}
	if rep := srv2.recovered.Reports; rep != 2*tailSize {
		t.Fatalf("recovery replayed %d reports, want exactly the %d-report post-checkpoint tail", rep, 2*tailSize)
	}
	if srv2.recovered.Checkpoints < 1 {
		t.Fatalf("recovery loaded %d checkpoints, want >= 1", srv2.recovered.Checkpoints)
	}
	if code, _ := post(t, ts2.URL+"/v1/columns/A/finalize", nil); code != 200 {
		t.Fatal("finalize after recovery failed")
	}
	got := fetchSketch(t, ts2.URL, "A")

	// Reference: an uninterrupted in-memory run over the same streams.
	_, tsRef, _ := testServer(t)
	for _, stream := range append(streams, tail...) {
		if code, _ := post(t, tsRef.URL+"/v1/columns/A/reports", stream); code != 200 {
			t.Fatal("reference ingest failed")
		}
	}
	if code, _ := post(t, tsRef.URL+"/v1/columns/A/finalize", nil); code != 200 {
		t.Fatal("reference finalize failed")
	}
	if !bytes.Equal(got, fetchSketch(t, tsRef.URL, "A")) {
		t.Fatal("recovered sketch is not byte-identical to the uninterrupted run")
	}
}

// envelope pulls the structured error out of a response body map,
// failing the test if the envelope shape is missing.
func envelope(t *testing.T, body map[string]any) (code, message, column string) {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", body)
	}
	code, _ = env["code"].(string)
	message, _ = env["message"].(string)
	column, _ = env["column"].(string)
	if code == "" || message == "" {
		t.Fatalf("envelope missing code or message: %v", env)
	}
	return code, message, column
}

// TestErrorEnvelopeAllRoutes drives every route into its error paths
// and asserts the structured envelope: the right status, the right
// stable code, and the column attribution where one applies.
func TestErrorEnvelopeAllRoutes(t *testing.T) {
	_, ts, p := testServer(t)
	stream := encodeColumn(t, p, 7, dataset.Zipf(7, 200, 100, 1.2))
	if code, _ := post(t, ts.URL+"/v1/columns/C/reports", stream); code != 200 {
		t.Fatal("seed ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/F/reports", stream); code != 200 {
		t.Fatal("seed ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/F/finalize", nil); code != 200 {
		t.Fatal("seed finalize failed")
	}

	cases := []struct {
		name       string
		method     string
		url        string
		body       []byte
		wantStatus int
		wantCode   string
		wantColumn string
	}{
		{"garbage reports", "POST", "/v1/columns/X/reports", []byte("not a report stream"), 400, "bad_request", ""},
		{"status of unknown column", "GET", "/v1/columns/nope", nil, 404, "column_not_found", ""},
		{"sketch of collecting column", "GET", "/v1/columns/C/sketch", nil, 409, "column_not_finalized", "C"},
		{"sketch of unknown column", "GET", "/v1/columns/nope/sketch", nil, 404, "column_not_found", "nope"},
		{"join of collecting columns", "GET", "/v1/join?left=C&right=F", nil, 409, "column_not_finalized", "C"},
		{"join of unknown column", "GET", "/v1/join?left=nope&right=F", nil, 404, "column_not_found", "nope"},
		{"join without arguments", "GET", "/v1/join", nil, 400, "bad_request", ""},
		{"chain with unknown column", "GET", "/v1/join?path=F,nope,F", nil, 404, "column_not_found", "nope"},
		{"frequency of collecting column", "GET", "/v1/frequency?column=C&value=1", nil, 409, "column_not_finalized", "C"},
		{"frequency without arguments", "GET", "/v1/frequency", nil, 400, "bad_request", ""},
		{"reports into finalized column", "POST", "/v1/columns/F/reports", stream, 409, "column_finalized", "F"},
		{"double finalize", "POST", "/v1/columns/F/finalize", nil, 409, "column_finalized", "F"},
		{"garbage merge", "POST", "/v1/columns/X/merge", []byte("0123456789012345678901234567890123456789012345678901234567890123"), 400, "bad_request", ""},
		{"advance of non-plus column", "POST", "/v1/columns/C/advance?domain=100&theta=0.01", nil, 409, "column_conflict", "C"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body map[string]any
			if tc.method == "GET" {
				status, body = get(t, ts.URL+tc.url)
			} else {
				status, body = post(t, ts.URL+tc.url, tc.body)
			}
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (%v)", status, tc.wantStatus, body)
			}
			code, _, column := envelope(t, body)
			if code != tc.wantCode {
				t.Fatalf("code %q, want %q (%v)", code, tc.wantCode, body)
			}
			if tc.wantColumn != "" && column != tc.wantColumn {
				t.Fatalf("column %q, want %q (%v)", column, tc.wantColumn, body)
			}
		})
	}
}

// TestColumnsListing: GET /v1/columns reports every column with its
// lifecycle state and privacy spend.
func TestColumnsListing(t *testing.T) {
	_, ts, p := testServer(t)
	stream := encodeColumn(t, p, 3, dataset.Zipf(3, 150, 100, 1.2))
	if code, _ := post(t, ts.URL+"/v1/columns/A/reports", stream); code != 200 {
		t.Fatal("ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/B/reports", stream); code != 200 {
		t.Fatal("ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/B/finalize", nil); code != 200 {
		t.Fatal("finalize failed")
	}
	code, body := get(t, ts.URL+"/v1/columns")
	if code != 200 || body["count"].(float64) != 2 {
		t.Fatalf("listing: %d %v", code, body)
	}
	cols := body["columns"].([]any)
	a := cols[0].(map[string]any)
	b := cols[1].(map[string]any)
	if a["name"] != "A" || a["state"] != "collecting" || a["reports"].(float64) != 150 {
		t.Fatalf("column A entry: %v", a)
	}
	if b["name"] != "B" || b["state"] != "finalized" || b["kind"] != "join" {
		t.Fatalf("column B entry: %v", b)
	}
	if eps := a["epsilonSpent"].(float64); eps != 150*p.Epsilon {
		t.Fatalf("A epsilonSpent = %g, want %g", eps, 150*p.Epsilon)
	}
}

// promLine matches one exposition sample: name, optional {labels},
// space, float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? (-?[0-9.]+(e[+-]?[0-9]+)?|[+-]Inf|NaN)$`)

// TestMetricsExposition scrapes /metrics after exercising the API and
// checks the page parses as Prometheus text exposition with the
// families an operator dashboards on.
func TestMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	srv, ts, p := opsServer(t, dir, Options{TenantRate: 10000, TenantBurst: 10000})
	defer srv.Close()
	defer ts.Close()
	stream := encodeColumn(t, p, 5, dataset.Zipf(5, 100, 50, 1.2))
	for _, col := range []string{"A", "B"} {
		if code, _ := post(t, ts.URL+"/v1/columns/"+col+"/reports", stream); code != 200 {
			t.Fatal("ingest failed")
		}
		if code, _ := post(t, ts.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatal("finalize failed")
		}
	}
	if code, _ := get(t, ts.URL+"/v1/join?left=A&right=B"); code != 200 {
		t.Fatal("join failed")
	}
	get(t, ts.URL+"/v1/columns/nope") // a 404 for the code label

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var page bytes.Buffer
	if _, err := page.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	samples := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(page.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		samples[line[:strings.IndexAny(line, "{ ")]]++
	}
	for _, family := range []string{
		"ldpjoin_up",
		"ldpjoin_http_requests_total",
		"ldpjoin_http_request_duration_seconds_bucket",
		"ldpjoin_http_request_duration_seconds_sum",
		"ldpjoin_http_request_duration_seconds_count",
		"ldpjoin_ingest_queue_depth",
		"ldpjoin_columns",
		"ldpjoin_query_cache_hit_ratio",
		"ldpjoin_wal_appends_total",
		"ldpjoin_checkpoint_age_seconds",
		"ldpjoin_tenant_requests_total",
	} {
		if samples[family] == 0 {
			t.Errorf("family %s has no samples", family)
		}
	}
	// The route label is the mux pattern, not the raw path: per-column
	// URLs must not fan out into per-name label values.
	if strings.Contains(page.String(), `route="/v1/columns/A`) {
		t.Fatal("route label leaked a raw URL instead of the mux pattern")
	}
	if !strings.Contains(page.String(), `route="GET /v1/join"`) {
		t.Fatal("missing per-route sample for GET /v1/join")
	}
}

// TestTenantRateLimit: a tenant that exhausts its burst gets 429
// rate_limited with Retry-After, while another tenant is untouched and
// health stays exempt.
func TestTenantRateLimit(t *testing.T) {
	srv, err := NewWithOptions(core.Params{K: 9, M: 512, Epsilon: 4}, 42,
		Options{TenantRate: 0.001, TenantBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	do := func(tenant, path string) (*http.Response, map[string]any) {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if tenant != "" {
			req.Header.Set("Authorization", "Bearer "+tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		return resp, body
	}
	for i := 0; i < 2; i++ {
		if resp, body := do("alice", "/v1/stats"); resp.StatusCode != 200 {
			t.Fatalf("request %d within burst: %d %v", i, resp.StatusCode, body)
		}
	}
	resp, body := do("alice", "/v1/stats")
	if resp.StatusCode != 429 {
		t.Fatalf("over-burst request: %d %v, want 429", resp.StatusCode, body)
	}
	if code, _, _ := envelope(t, body); code != "rate_limited" {
		t.Fatalf("over-burst code %q, want rate_limited", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if resp, _ := do("bob", "/v1/stats"); resp.StatusCode != 200 {
		t.Fatalf("another tenant throttled by alice's bucket: %d", resp.StatusCode)
	}
	if resp, _ := do("alice", "/v1/healthz"); resp.StatusCode != 200 {
		t.Fatalf("health probe throttled: %d", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/metrics"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("metrics scrape throttled: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
}

// TestTenantEpsilonBudget: report ingestion debits count × ε against
// the tenant's budget and refuses the overrunning batch with 429
// budget_exhausted; queries stay free, and other tenants keep their own
// ledgers.
func TestTenantEpsilonBudget(t *testing.T) {
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	srv, err := NewWithOptions(p, 42, Options{TenantEpsilonBudget: 100 * p.Epsilon})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	stream := encodeColumn(t, p, 9, dataset.Zipf(9, 100, 50, 1.2))
	doPost := func(tenant, path string, body []byte) (*http.Response, map[string]any) {
		req, _ := http.NewRequest("POST", ts.URL+path, bytes.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		return resp, out
	}

	// 100 reports at ε=4 spends the whole 400 budget…
	if resp, body := doPost("alice", "/v1/columns/A/reports", stream); resp.StatusCode != 200 {
		t.Fatalf("within-budget ingest: %d %v", resp.StatusCode, body)
	}
	// …so one more report overruns it.
	one := encodeColumn(t, p, 10, []uint64{1})
	resp, body := doPost("alice", "/v1/columns/A/reports", one)
	if resp.StatusCode != 429 {
		t.Fatalf("over-budget ingest: %d %v, want 429", resp.StatusCode, body)
	}
	if code, _, column := envelope(t, body); code != "budget_exhausted" || column != "A" {
		t.Fatalf("over-budget envelope: %v", body)
	}
	// Another tenant has its own ledger.
	if resp, body := doPost("bob", "/v1/columns/A/reports", one); resp.StatusCode != 200 {
		t.Fatalf("bob's ingest hit alice's budget: %d %v", resp.StatusCode, body)
	}
	// The ledger shows up in /v1/stats.
	_, stats := get(t, ts.URL+"/v1/stats")
	tenants := stats["tenants"].(map[string]any)["perTenant"].(map[string]any)
	alice := tenants["alice"].(map[string]any)
	if alice["epsilonSpent"].(float64) != 100*p.Epsilon || alice["budgetRefusals"].(float64) != 1 {
		t.Fatalf("alice's ledger: %v", alice)
	}
}
