package service

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/protocol"
)

// durableServer starts a server persisting into dir, with the same
// params and seed as testServer so streams are interchangeable between
// durable and in-memory servers.
func durableServer(t *testing.T, dir string) (*Server, *httptest.Server, core.Params) {
	t.Helper()
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	srv, err := NewWithOptions(p, 42, Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, ts, p
}

// crash kills a durable server the hard way: no Shutdown, no
// checkpoint. The engine and store are released so the test process
// does not leak goroutines and file handles, but nothing is written
// that a real crash would not have written — recovery must come from
// the WAL alone.
func crash(t *testing.T, srv *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	srv.engine.Close()
	if err := srv.st.Close(); err != nil {
		t.Fatal(err)
	}
}

// mergeSnapshot builds an unfinalized snapshot of clientSeed-perturbed
// values, encoded for POST /merge.
func mergeSnapshot(t *testing.T, p core.Params, clientSeed int64, values []uint64) []byte {
	t.Helper()
	fam := p.NewFamily(42)
	agg := core.NewAggregator(p, fam)
	rng := rand.New(rand.NewSource(clientSeed))
	for _, v := range values {
		agg.Add(core.Perturb(v, p, fam, rng))
	}
	enc, err := protocol.EncodeSnapshot(protocol.SnapshotOfAggregator(agg))
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// fetchSketch exports a finalized column's sketch bytes.
func fetchSketch(t *testing.T, base, column string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/columns/" + column + "/sketch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("exporting %s: %d %v", column, resp.StatusCode, err)
	}
	return data
}

// TestCrashRecoveryWALReplay is the acceptance test of the WAL path:
// kill a durable server after N acknowledged reports (and a federated
// merge), reopen the same data directory, finalize — the recovered
// sketches must be byte-identical to an uninterrupted in-memory run fed
// the same streams.
func TestCrashRecoveryWALReplay(t *testing.T) {
	const n, domain = 8000, 500
	dir := t.TempDir()
	srv1, ts1, p := durableServer(t, dir)

	da := dataset.Zipf(1, n, domain, 1.2)
	db := dataset.Zipf(2, n, domain, 1.2)
	streamA1 := encodeColumn(t, p, 10, da[:n/2])
	streamA2 := encodeColumn(t, p, 11, da[n/2:])
	streamB := encodeColumn(t, p, 12, db)
	merge := mergeSnapshot(t, p, 13, da[:200])

	for url, body := range map[string][]byte{
		ts1.URL + "/v1/columns/A/reports": streamA1,
		ts1.URL + "/v1/columns/B/reports": streamB,
	} {
		if code, out := post(t, url, body); code != 200 {
			t.Fatalf("ingest %s: %d %v", url, code, out)
		}
	}
	if code, out := post(t, ts1.URL+"/v1/columns/A/reports", streamA2); code != 200 {
		t.Fatalf("second A batch: %d %v", code, out)
	}
	if code, out := post(t, ts1.URL+"/v1/columns/A/merge", merge); code != 200 {
		t.Fatalf("merge: %d %v", code, out)
	}
	crash(t, srv1, ts1)

	// Reopen the directory: the WAL replays through the engine.
	srv2, ts2, _ := durableServer(t, dir)
	defer srv2.Close()
	defer ts2.Close()
	if code, body := get(t, ts2.URL+"/v1/columns/A"); code != 200 ||
		body["state"] != "collecting" || body["reports"].(float64) != n+200 {
		t.Fatalf("recovered A status: %d %v", code, body)
	}
	_, stats := get(t, ts2.URL+"/v1/stats")
	rec := stats["durability"].(map[string]any)["recovered"].(map[string]any)
	if rec["columns"].(float64) != 2 || rec["reports"].(float64) != 2*n || rec["merges"].(float64) != 1 {
		t.Fatalf("recovered counters: %v", rec)
	}
	for _, col := range []string{"A", "B"} {
		if code, out := post(t, ts2.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("finalize %s after recovery: %d %v", col, code, out)
		}
	}
	gotA := fetchSketch(t, ts2.URL, "A")
	gotB := fetchSketch(t, ts2.URL, "B")

	// Reference: an uninterrupted in-memory run over the same streams.
	_, tsRef, _ := testServer(t)
	for _, in := range []struct {
		col  string
		body []byte
	}{
		{"A", streamA1}, {"A", streamA2}, {"B", streamB},
	} {
		if code, _ := post(t, tsRef.URL+"/v1/columns/"+in.col+"/reports", in.body); code != 200 {
			t.Fatalf("reference ingest %s failed", in.col)
		}
	}
	if code, _ := post(t, tsRef.URL+"/v1/columns/A/merge", merge); code != 200 {
		t.Fatal("reference merge failed")
	}
	for _, col := range []string{"A", "B"} {
		if code, _ := post(t, tsRef.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("reference finalize %s failed", col)
		}
	}
	if !bytes.Equal(gotA, fetchSketch(t, tsRef.URL, "A")) {
		t.Fatal("recovered sketch A is not byte-identical to the uninterrupted run")
	}
	if !bytes.Equal(gotB, fetchSketch(t, tsRef.URL, "B")) {
		t.Fatal("recovered sketch B is not byte-identical to the uninterrupted run")
	}

	// Finalized state is durable too: crash again, reopen, and the
	// sketches come back finalized with the same bytes, queryable.
	crash(t, srv2, ts2)
	srv3, ts3, _ := durableServer(t, dir)
	defer srv3.Close()
	defer ts3.Close()
	if code, body := get(t, ts3.URL+"/v1/columns/A"); code != 200 || body["state"] != "finalized" {
		t.Fatalf("A after second crash: %d %v", code, body)
	}
	if !bytes.Equal(fetchSketch(t, ts3.URL, "A"), gotA) {
		t.Fatal("finalized sketch changed across restart")
	}
	if code, body := get(t, ts3.URL+"/v1/join?left=A&right=B"); code != 200 {
		t.Fatalf("join after recovery: %d %v", code, body)
	}
}

// TestCrashRecoveryCheckpointRestore is the acceptance test of the
// checkpoint path: a graceful shutdown checkpoints collecting state and
// retires the WAL; more reports after a restart land in fresh WAL
// segments; a crash then recovers checkpoint + WAL — and the finalized
// sketch is byte-identical to an uninterrupted run of the whole stream.
func TestCrashRecoveryCheckpointRestore(t *testing.T) {
	const n, domain = 6000, 400
	dir := t.TempDir()
	da := dataset.Zipf(3, n, domain, 1.2)

	srv1, ts1, p := durableServer(t, dir)
	streamA1 := encodeColumn(t, p, 20, da[:n/2])
	streamA2 := encodeColumn(t, p, 21, da[n/2:])
	if code, _ := post(t, ts1.URL+"/v1/columns/A/reports", streamA1); code != 200 {
		t.Fatal("ingest failed")
	}
	ts1.Close()
	if err := srv1.Shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	srv2, ts2, _ := durableServer(t, dir)
	_, stats := get(t, ts2.URL+"/v1/stats")
	rec := stats["durability"].(map[string]any)["recovered"].(map[string]any)
	if rec["checkpoints"].(float64) != 1 || rec["reports"].(float64) != 0 {
		t.Fatalf("checkpoint recovery counters: %v (want the WAL retired in favor of the checkpoint)", rec)
	}
	if code, body := get(t, ts2.URL+"/v1/columns/A"); code != 200 || body["reports"].(float64) != n/2 {
		t.Fatalf("A after checkpoint restore: %d %v", code, body)
	}
	if code, _ := post(t, ts2.URL+"/v1/columns/A/reports", streamA2); code != 200 {
		t.Fatal("post-restart ingest failed")
	}
	crash(t, srv2, ts2)

	srv3, ts3, _ := durableServer(t, dir)
	defer srv3.Close()
	defer ts3.Close()
	_, stats = get(t, ts3.URL+"/v1/stats")
	rec = stats["durability"].(map[string]any)["recovered"].(map[string]any)
	if rec["checkpoints"].(float64) != 1 || rec["reports"].(float64) != n/2 {
		t.Fatalf("checkpoint+WAL recovery counters: %v", rec)
	}
	if code, _ := post(t, ts3.URL+"/v1/columns/A/finalize", nil); code != 200 {
		t.Fatal("finalize after mixed recovery failed")
	}
	got := fetchSketch(t, ts3.URL, "A")

	_, tsRef, _ := testServer(t)
	for _, body := range [][]byte{streamA1, streamA2} {
		if code, _ := post(t, tsRef.URL+"/v1/columns/A/reports", body); code != 200 {
			t.Fatal("reference ingest failed")
		}
	}
	if code, _ := post(t, tsRef.URL+"/v1/columns/A/finalize", nil); code != 200 {
		t.Fatal("reference finalize failed")
	}
	if !bytes.Equal(got, fetchSketch(t, tsRef.URL, "A")) {
		t.Fatal("checkpoint-restored sketch is not byte-identical to the uninterrupted run")
	}
}

// TestDurableRejectsMismatchedDir pins the fingerprint check: a data
// directory written under one configuration refuses to open under
// another instead of replaying unmergeable state.
func TestDurableRejectsMismatchedDir(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1, _ := durableServer(t, dir)
	ts1.Close()
	srv1.Close()
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	if _, err := NewWithOptions(p, 43, Options{DataDir: dir}); err == nil {
		t.Fatal("seed mismatch opened the data dir")
	}
	p.Epsilon = 2
	if _, err := NewWithOptions(p, 42, Options{DataDir: dir}); err == nil {
		t.Fatal("params mismatch opened the data dir")
	}
}
