package service

import (
	"errors"
	"sync"
	"sync/atomic"
)

// queryCache memoizes query results under a size cap. Finalized
// sketches never change, so entries never go stale — the cap exists
// only to stop an adversarial query mix (distinct frequency values,
// say) from growing the map without bound.
//
// The cache owns its locking, sharded so concurrent queries for
// different keys contend only on their shard, and the hit/miss/eviction
// counters are atomics shared across shards. Each shard additionally
// runs per-key singleflight: when N requests miss on the same key at
// once, one computes (a chain estimate scans K·M cells per hop) and the
// other N-1 wait for its result instead of recomputing it N times.
//
// Small caches collapse to a single shard so eviction stays globally
// oldest-first — per-shard ordering only approximates that, which is
// fine at the default capacity (thousands of entries) but would make a
// 3-entry cache evict the wrong keys.
const (
	// maxCacheShards bounds the shard fan-out; 16 single-mutex shards
	// outstrip any realistic query concurrency on one node.
	maxCacheShards = 16
	// minShardEntries is the smallest per-shard capacity worth splitting
	// for: below it, sharding costs eviction quality without relieving
	// any real contention.
	minShardEntries = 64
)

type queryCache struct {
	capacity int    // configured total; <= 0 disables memoization
	mask     uint32 // len(shards) - 1; shard counts are powers of two
	shards   []cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	coalesced atomic.Int64 // successful waits on another request's in-flight compute (also counted in hits)
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]any
	order    []string // insertion order; entries[order[head:]] is live
	head     int
	flights  map[string]*flight
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{} // closed when val/err are set
	val  any
	err  error
}

func newQueryCache(capacity int) *queryCache {
	shards := 1
	for shards < maxCacheShards && capacity >= 2*shards*minShardEntries {
		shards *= 2
	}
	c := &queryCache{capacity: capacity, mask: uint32(shards - 1), shards: make([]cacheShard, shards)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = capacity / shards
		if i < capacity%shards {
			//ldpjoinvet:ignore atomiccounter construction: the cache has not been shared yet
			sh.capacity++
		}
		sh.entries = make(map[string]any)
		sh.flights = make(map[string]*flight)
	}
	return c
}

// shard picks the shard owning key (FNV-1a over the key bytes).
func (c *queryCache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&c.mask]
}

// errFlightAborted is what waiters see if a compute died without
// delivering (a panicking handler, recovered by net/http, is the only
// way there).
var errFlightAborted = errors.New("service: query computation aborted")

// do returns the memoized result for key, running compute on a miss and
// caching its result. Concurrent callers with the same key coalesce:
// exactly one runs compute, the rest block until it delivers and share
// the value (or the error — compute is deterministic over immutable
// sketches, so recomputing a failure would fail identically). cached
// reports whether the caller's result came from the cache or a shared
// flight rather than its own compute. Errors are never cached. With
// memoization disabled (capacity <= 0) every call computes and counts a
// miss, as before.
func (c *queryCache) do(key string, compute func() (any, error)) (v any, cached bool, err error) {
	if c.capacity <= 0 {
		c.misses.Add(1)
		v, err = compute()
		return v, false, err
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if v, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if f, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			// An error result is never cached, so this lookup was a miss
			// — counted so hits+misses stays the total lookup count.
			c.misses.Add(1)
			return nil, false, f.err
		}
		c.hits.Add(1)
		c.coalesced.Add(1)
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()

	c.misses.Add(1)
	delivered := false
	defer func() {
		sh.mu.Lock()
		delete(sh.flights, key)
		if delivered && f.err == nil {
			sh.put(key, f.val, &c.evictions)
		} else if !delivered {
			f.err = errFlightAborted
		}
		sh.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	delivered = true
	return f.val, false, f.err
}

// put inserts a freshly computed value, evicting the shard's oldest
// entries once its share of the cap is reached. The caller holds sh.mu
// and owns the key's flight, which guarantees the key is absent: a
// flight is only created when the entry was missing, and every
// concurrent request for the key joins that flight instead of
// computing its own insert.
func (sh *cacheShard) put(key string, v any, evictions *atomic.Int64) {
	for len(sh.entries) >= sh.capacity {
		victim := sh.order[sh.head]
		sh.order[sh.head] = ""
		//ldpjoinvet:ignore atomiccounter the caller holds sh.mu, per this method's contract
		sh.head++
		delete(sh.entries, victim)
		evictions.Add(1)
	}
	// Compact the retired prefix once it dominates the slice, so the
	// order log does not grow with evictions.
	if sh.head > 1024 && sh.head > len(sh.order)/2 {
		sh.order = append([]string(nil), sh.order[sh.head:]...)
		sh.head = 0
	}
	sh.entries[key] = v
	sh.order = append(sh.order, key)
}

// cacheStats is a point-in-time snapshot of the counters for /v1/stats.
type cacheStats struct {
	size, capacity, shards             int
	hits, misses, evictions, coalesced int64
}

func (c *queryCache) stats() cacheStats {
	size := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		size += len(sh.entries)
		sh.mu.Unlock()
	}
	return cacheStats{
		size: size, capacity: c.capacity, shards: len(c.shards),
		hits: c.hits.Load(), misses: c.misses.Load(),
		evictions: c.evictions.Load(), coalesced: c.coalesced.Load(),
	}
}
