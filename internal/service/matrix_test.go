package service

import (
	"bytes"
	"math"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
	"ldpjoin/internal/protocol"
)

// Matrix-column tests run under their own, smaller configuration: a
// matrix column's aggregation state is K·M² cells per shard, so the
// scalar suite's M=512 would cost tens of MB per column here.
var (
	mtParams = core.Params{K: 7, M: 128, Epsilon: 5}
	mtMatrix = core.MatrixParams{K: 7, M1: 128, M2: 128, Epsilon: 5}
)

const mtSeed = 42

// mtFam returns attribute attr's hash family under the test seed.
func mtFam(attr int) *hashing.Family {
	return hashing.NewFamily(hashing.AttributeSeed(mtSeed, attr), mtParams.K, mtParams.M)
}

// matrixServer starts an in-memory server under the matrix test
// configuration; dir != "" makes it durable.
func matrixServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewWithOptions(mtParams, mtSeed, Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	if dir == "" {
		t.Cleanup(srv.Close)
		t.Cleanup(ts.Close)
	}
	return srv, ts
}

// encodeAttrColumn perturbs a column under attribute attr's family and
// returns the KindJoin wire stream.
func encodeAttrColumn(t *testing.T, attr int, clientSeed int64, data []uint64) []byte {
	t.Helper()
	fam := mtFam(attr)
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, mtParams)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(clientSeed))
	for _, d := range data {
		if err := w.Write(core.Perturb(d, mtParams, fam, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeMatrixColumn perturbs a two-column table spanning attributes
// (attr, attr+1) and returns the KindMatrix wire stream.
func encodeMatrixColumn(t *testing.T, attr int, clientSeed int64, a, b []uint64) []byte {
	t.Helper()
	famA, famB := mtFam(attr), mtFam(attr+1)
	var buf bytes.Buffer
	w, err := protocol.NewMatrixReportWriter(&buf, mtMatrix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(clientSeed))
	for i := range a {
		if err := w.Write(core.PerturbTuple(a[i], b[i], mtMatrix, famA, famB, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeStreamReports re-decodes a KindJoin wire stream into reports,
// for building in-process reference sketches from the exact bytes the
// server ingested.
func decodeStreamReports(t *testing.T, stream []byte) []core.Report {
	t.Helper()
	var out []core.Report
	if _, _, err := protocol.ReadStream(bytes.NewReader(stream), mtParams, func(r core.Report) {
		out = append(out, r)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// decodeMatrixStreamReports is decodeStreamReports for KindMatrix.
func decodeMatrixStreamReports(t *testing.T, stream []byte) []core.MatrixReport {
	t.Helper()
	var out []core.MatrixReport
	if _, _, err := protocol.ReadMatrixStream(bytes.NewReader(stream), mtMatrix, func(r core.MatrixReport) {
		out = append(out, r)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServiceMatrixEndToEnd is the acceptance test of the polymorphic
// column stack: KindMatrix streams ingest into a live durable server
// alongside attribute-0 and attribute-1 join columns, the chain planner
// answers GET /v1/join?path=T1,T2,T3 with exactly the estimate an
// in-process ChainEstimate over the same reports produces (and within
// loose relative error of the exact join size), the server survives a
// kill-and-reopen with byte-identical state, and a 2-collector
// federated run merges to the same bytes and the same estimate.
func TestServiceMatrixEndToEnd(t *testing.T) {
	const n, domain = 12000, 200
	t1 := dataset.Zipf(61, n, domain, 1.3)
	t2a := dataset.Zipf(62, n, domain, 1.3)
	t2b := dataset.Zipf(63, n, domain, 1.3)
	t3 := dataset.Zipf(64, n, domain, 1.3)
	truth := join.ChainSize(t1, []join.PairTable{{A: t2a, B: t2b}}, t3)

	// Each column's stream is cut in two so the federation leg below can
	// hand one half to each collector — the union is the same bytes.
	streams := map[string][2][]byte{
		"T1": {encodeAttrColumn(t, 0, 71, t1[:n/2]), encodeAttrColumn(t, 0, 72, t1[n/2:])},
		"T2": {encodeMatrixColumn(t, 0, 73, t2a[:n/2], t2b[:n/2]), encodeMatrixColumn(t, 0, 74, t2a[n/2:], t2b[n/2:])},
		"T3": {encodeAttrColumn(t, 1, 75, t3[:n/2]), encodeAttrColumn(t, 1, 76, t3[n/2:])},
	}
	ingestURL := map[string]string{
		"T1": "/v1/columns/T1/reports",
		"T2": "/v1/columns/T2/reports?attr=0",
		"T3": "/v1/columns/T3/reports?attr=1",
	}
	columns := []string{"T1", "T2", "T3"}

	// In-process reference: fold the exact same reports sequentially and
	// compose the chain estimator directly.
	refT1 := core.NewAggregator(mtParams, mtFam(0))
	refT3 := core.NewAggregator(mtParams, mtFam(1))
	refT2 := core.NewMatrixAggregator(mtMatrix, mtFam(0), mtFam(1))
	for _, half := range streams["T1"] {
		for _, r := range decodeStreamReports(t, half) {
			refT1.Add(r)
		}
	}
	for _, half := range streams["T3"] {
		for _, r := range decodeStreamReports(t, half) {
			refT3.Add(r)
		}
	}
	for _, half := range streams["T2"] {
		for _, r := range decodeMatrixStreamReports(t, half) {
			refT2.Add(r)
		}
	}
	want := core.ChainEstimate(refT1.Finalize(), []*core.MatrixSketch{refT2.Finalize()}, refT3.Finalize())

	// Live durable server: ingest the first halves, crash, reopen (WAL
	// replay), ingest the second halves, finalize, query.
	dir := t.TempDir()
	srv1, ts1 := matrixServer(t, dir)
	for _, col := range columns {
		if code, out := post(t, ts1.URL+ingestURL[col], streams[col][0]); code != 200 {
			t.Fatalf("ingest %s: %d %v", col, code, out)
		}
	}
	crash(t, srv1, ts1)

	srv2, ts2 := matrixServer(t, dir)
	if code, body := get(t, ts2.URL+"/v1/columns/T2"); code != 200 ||
		body["kind"] != "matrix" || body["state"] != "collecting" || body["reports"].(float64) != n/2 {
		t.Fatalf("recovered T2 status: %d %v", code, body)
	}
	for _, col := range columns {
		if code, out := post(t, ts2.URL+ingestURL[col], streams[col][1]); code != 200 {
			t.Fatalf("post-recovery ingest %s: %d %v", col, code, out)
		}
	}
	for _, col := range columns {
		if code, out := post(t, ts2.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("finalize %s: %d %v", col, code, out)
		}
	}
	code, body := get(t, ts2.URL+"/v1/join?path=T1,T2,T3")
	if code != 200 {
		t.Fatalf("chain query: %d %v", code, body)
	}
	est := body["estimate"].(float64)
	if est != want {
		t.Fatalf("chain estimate %v != in-process ChainEstimate %v over the same reports", est, want)
	}
	if re := math.Abs(est-truth) / truth; re > 1.0 {
		t.Fatalf("chain RE = %.3f (est %.6g truth %.6g)", re, est, truth)
	}
	// Memoized on repeat.
	if code, body := get(t, ts2.URL+"/v1/join?path=T1,T2,T3"); code != 200 || body["cached"] != true {
		t.Fatalf("repeat chain query: %d %v", code, body)
	}
	snaps := make(map[string][]byte, len(columns))
	for _, col := range columns {
		snaps[col] = getSnapshot(t, ts2.URL, col)
	}
	crash(t, srv2, ts2)

	// Finalized matrix state survives a second kill-and-reopen.
	srv3, ts3 := matrixServer(t, dir)
	for _, col := range columns {
		if !bytes.Equal(getSnapshot(t, ts3.URL, col), snaps[col]) {
			t.Fatalf("finalized %s snapshot changed across restart", col)
		}
	}
	code, body = get(t, ts3.URL+"/v1/join?path=T1,T2,T3")
	if code != 200 || body["estimate"].(float64) != want {
		t.Fatalf("chain estimate after restart: %d %v, want %v", code, body, want)
	}
	ts3.Close()
	srv3.Close()

	// Federation: two in-memory collectors each ingest one half of every
	// column; a federator merges their unfinalized snapshots. The
	// finalized federated state must be byte-identical to the
	// single-node run, with the identical chain estimate.
	_, tsA := matrixServer(t, "")
	_, tsB := matrixServer(t, "")
	_, tsF := matrixServer(t, "")
	for _, col := range columns {
		if code, out := post(t, tsA.URL+ingestURL[col], streams[col][0]); code != 200 {
			t.Fatalf("collector A ingest %s: %d %v", col, code, out)
		}
		if code, out := post(t, tsB.URL+ingestURL[col], streams[col][1]); code != 200 {
			t.Fatalf("collector B ingest %s: %d %v", col, code, out)
		}
	}
	for _, col := range columns {
		for _, collector := range []string{tsA.URL, tsB.URL} {
			snap := getSnapshot(t, collector, col)
			if code, out := post(t, tsF.URL+"/v1/columns/"+col+"/merge", snap); code != 200 {
				t.Fatalf("merging %s: %d %v", col, code, out)
			}
		}
		if code, out := post(t, tsF.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("federator finalize %s: %d %v", col, code, out)
		}
	}
	for _, col := range columns {
		if !bytes.Equal(getSnapshot(t, tsF.URL, col), snaps[col]) {
			t.Fatalf("federated %s differs from single-node ingestion", col)
		}
	}
	code, body = get(t, tsF.URL+"/v1/join?path=T1,T2,T3")
	if code != 200 || body["estimate"].(float64) != want {
		t.Fatalf("federated chain estimate: %d %v, want %v", code, body, want)
	}
}

// TestServiceChainPlannerRejections covers the planner's refusals:
// malformed paths, unknown columns, kinds in the wrong position, and
// chains whose attribute slots do not compose.
func TestServiceChainPlannerRejections(t *testing.T) {
	_, ts := matrixServer(t, "")
	const n = 500
	data := dataset.Zipf(81, n, 100, 1.3)

	for name, url := range map[string]string{
		"T1": "/v1/columns/T1/reports",        // join, attr 0
		"T3": "/v1/columns/T3/reports?attr=1", // join, attr 1
	} {
		body := encodeAttrColumn(t, 0, 91, data)
		if name == "T3" {
			body = encodeAttrColumn(t, 1, 92, data)
		}
		if code, out := post(t, ts.URL+url, body); code != 200 {
			t.Fatalf("ingest %s: %d %v", name, code, out)
		}
	}
	if code, out := post(t, ts.URL+"/v1/columns/AB/reports?attr=1",
		encodeMatrixColumn(t, 1, 93, data, data)); code != 200 {
		t.Fatalf("ingest AB: %d %v", code, out)
	}
	for _, col := range []string{"T1", "T3", "AB"} {
		if code, out := post(t, ts.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("finalize %s: %d %v", col, code, out)
		}
	}

	// Too short.
	if code, _ := get(t, ts.URL+"/v1/join?path=T1,T3"); code != 400 {
		t.Fatalf("2-column path: code %d, want 400", code)
	}
	// Unknown column.
	if code, _ := get(t, ts.URL+"/v1/join?path=T1,nope,T3"); code != 404 {
		t.Fatalf("unknown chain column: code %d, want 404", code)
	}
	// Join column in a middle position.
	if code, _ := get(t, ts.URL+"/v1/join?path=T1,T3,T1"); code != 400 {
		t.Fatalf("join column mid-chain: code %d, want 400", code)
	}
	// Matrix column in an end position.
	if code, _ := get(t, ts.URL+"/v1/join?path=AB,AB,T3"); code != 400 {
		t.Fatalf("matrix column at chain end: code %d, want 400", code)
	}
	// Non-adjacent slots: T1 occupies attribute 0, AB spans (1, 2) — the
	// middle's left family is not the left end's family.
	if code, body := get(t, ts.URL+"/v1/join?path=T1,AB,T3"); code != 409 {
		t.Fatalf("non-composing chain: code %d (%v), want 409", code, body)
	}
	// The composable chain works: T3 (attr 1) ⋈ AB (1,2) needs a right
	// end on attribute 2.
	if code, out := post(t, ts.URL+"/v1/columns/T5/reports?attr=2",
		encodeAttrColumn(t, 2, 94, data)); code != 200 {
		t.Fatalf("ingest T5: %d %v", code, out)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/T5/finalize", nil); code != 200 {
		t.Fatal("finalize T5 failed")
	}
	if code, body := get(t, ts.URL+"/v1/join?path=T3,AB,T5"); code != 200 {
		t.Fatalf("composable chain: %d %v", code, body)
	}
	// Pairwise join across matrix columns is redirected to ?path=.
	if code, _ := get(t, ts.URL+"/v1/join?left=AB&right=T1"); code != 400 {
		t.Fatalf("pairwise join of a matrix column: code %d, want 400", code)
	}
	// Frequency on a matrix column is refused.
	if code, _ := get(t, ts.URL+"/v1/frequency?column=AB&value=1"); code != 400 {
		t.Fatalf("frequency on a matrix column: code %d, want 400", code)
	}
	// A matrix stream into an existing join column conflicts.
	if code, _ := post(t, ts.URL+"/v1/columns/T9/reports", encodeAttrColumn(t, 0, 95, data)); code != 200 {
		t.Fatal("ingest T9 failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/T9/reports?attr=0", encodeMatrixColumn(t, 0, 96, data, data)); code != 409 {
		t.Fatalf("kind flip on a collecting column: code %d, want 409", code)
	}
	// Out-of-range attr.
	if code, _ := post(t, ts.URL+"/v1/columns/T10/reports?attr=99", encodeAttrColumn(t, 0, 97, data)); code != 400 {
		t.Fatalf("out-of-range attr: code %d, want 400", code)
	}
}

// TestServiceQueryCacheBounded pins the satellite fix: the query cache
// stops growing at its cap, evicts oldest-first, and counts evictions
// in /v1/stats.
func TestServiceQueryCacheBounded(t *testing.T) {
	p := core.Params{K: 4, M: 64, Epsilon: 2}
	srv, err := NewWithOptions(p, mtSeed, Options{QueryCacheEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	fam := hashing.NewFamily(hashing.AttributeSeed(mtSeed, 0), p.K, p.M)
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		if err := w.Write(core.Perturb(uint64(i%20), p, fam, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/A/reports", buf.Bytes()); code != 200 {
		t.Fatal("ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/A/finalize", nil); code != 200 {
		t.Fatal("finalize failed")
	}

	// 8 distinct frequency queries through a 3-entry cache: size stays
	// capped, 5 evictions.
	for v := 0; v < 8; v++ {
		if code, _ := get(t, ts.URL+"/v1/frequency?column=A&value="+strconv.Itoa(v)); code != 200 {
			t.Fatalf("frequency query %d failed", v)
		}
	}
	_, stats := get(t, ts.URL+"/v1/stats")
	qc := stats["queryCache"].(map[string]any)
	if qc["size"].(float64) != 3 || qc["capacity"].(float64) != 3 {
		t.Fatalf("cache size = %v", qc)
	}
	if qc["evictions"].(float64) != 5 || qc["misses"].(float64) != 8 || qc["hits"].(float64) != 0 {
		t.Fatalf("cache counters = %v", qc)
	}
	// The newest entries are still cached; the oldest were evicted.
	if code, body := get(t, ts.URL+"/v1/frequency?column=A&value=7"); code != 200 || body["cached"] != true {
		t.Fatalf("newest entry evicted: %d %v", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/frequency?column=A&value=0"); code != 200 || body["cached"] != false {
		t.Fatalf("oldest entry still cached: %d %v", code, body)
	}
}

// TestServiceFrequencyMemoized pins the satellite fix: repeated
// frequency queries hit the unified cache and return identical values.
func TestServiceFrequencyMemoized(t *testing.T) {
	_, ts, p := testServer(t)
	data := dataset.Zipf(14, 5000, 300, 1.3)
	if code, _ := post(t, ts.URL+"/v1/columns/A/reports", encodeColumn(t, p, 14, data)); code != 200 {
		t.Fatal("ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/A/finalize", nil); code != 200 {
		t.Fatal("finalize failed")
	}
	code, first := get(t, ts.URL+"/v1/frequency?column=A&value=3")
	if code != 200 || first["cached"] != false {
		t.Fatalf("first frequency query: %d %v", code, first)
	}
	code, second := get(t, ts.URL+"/v1/frequency?column=A&value=3")
	if code != 200 || second["cached"] != true {
		t.Fatalf("repeat frequency query: %d %v", code, second)
	}
	if first["estimate"] != second["estimate"] || first["estimateMedian"] != second["estimateMedian"] {
		t.Fatalf("cached frequency differs: %v vs %v", first, second)
	}
	_, stats := get(t, ts.URL+"/v1/stats")
	qc := stats["queryCache"].(map[string]any)
	if qc["hits"].(float64) != 1 || qc["misses"].(float64) != 1 {
		t.Fatalf("frequency cache counters = %v", qc)
	}
}
