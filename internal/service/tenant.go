package service

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Per-tenant admission: a token-bucket rate limit on requests and an
// ε-budget ledger on report ingestion. The tenant is whoever the
// gateway says it is — `Authorization: Bearer <tenant>` — which is
// accounting, not authentication: the server is expected to sit behind
// a gateway that has already authenticated the caller, and what this
// layer adds is the per-caller throttle and the privacy ledger. Every
// accepted report spends ε of some user's privacy budget (the reason
// durability is a privacy property is the same reason ingestion volume
// is one), so the ledger debits count × ε per accepted batch and
// refuses the batch once the configured budget is spent.
//
// Requests without an Authorization header share the "anonymous"
// tenant, so an unconfigured deployment behaves like one big tenant.

// anonTenant is the tenant of requests carrying no bearer token.
const anonTenant = "anonymous"

// tenantLimits is the (global, per-tenant) admission configuration.
type tenantLimits struct {
	rate      float64 // requests/second refill; <= 0 disables rate limiting
	burst     float64 // bucket capacity; >= 1 when rate limiting is on
	epsBudget float64 // total ε a tenant may spend on reports; <= 0 disables
}

// tenantState is one tenant's bucket and ledger. The mutex covers the
// float fields; the struct is tiny and per-tenant, so contention is the
// tenant's own request concurrency, never cross-tenant.
type tenantState struct {
	name string

	mu             sync.Mutex
	tokens         float64
	lastRefill     time.Time
	epsSpent       float64
	requests       int64
	throttled      int64
	budgetRefusals int64
}

// tenantSnapshot is a point-in-time copy for /metrics and /v1/stats.
type tenantSnapshot struct {
	name           string
	requests       int64
	throttled      int64
	budgetRefusals int64
	epsSpent       float64
}

type tenantRegistry struct {
	limits tenantLimits
	m      sync.Map // tenant name -> *tenantState
}

// newTenantRegistry returns nil when nothing is configured — no
// admission middleware, no ledger, the pre-PR-7 behavior.
func newTenantRegistry(l tenantLimits) *tenantRegistry {
	if l.rate <= 0 && l.epsBudget <= 0 {
		return nil
	}
	if l.rate > 0 && l.burst < 1 {
		l.burst = 1
	}
	return &tenantRegistry{limits: l}
}

// tenantFrom extracts the tenant name from the request's bearer token.
func tenantFrom(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	if t, ok := strings.CutPrefix(auth, "Bearer "); ok {
		if t = strings.TrimSpace(t); t != "" {
			return t
		}
	}
	return anonTenant
}

func (tr *tenantRegistry) state(name string) *tenantState {
	v, ok := tr.m.Load(name)
	if !ok {
		v, _ = tr.m.LoadOrStore(name, &tenantState{
			name: name, tokens: tr.limits.burst, lastRefill: time.Now(),
		})
	}
	return v.(*tenantState)
}

// allow admits or throttles one request under the tenant's token
// bucket. With rate limiting disabled every request is admitted (but
// still counted, so /metrics shows per-tenant traffic either way).
func (tr *tenantRegistry) allow(name string) bool {
	t := tr.state(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr.limits.rate > 0 {
		now := time.Now()
		t.tokens = min(tr.limits.burst, t.tokens+now.Sub(t.lastRefill).Seconds()*tr.limits.rate)
		t.lastRefill = now
		if t.tokens < 1 {
			t.throttled++
			return false
		}
		t.tokens--
	}
	t.requests++
	return true
}

// spend debits eps from the tenant's budget, refusing (and debiting
// nothing) when it would overrun. The debit happens before the WAL
// append; a failed ingest refunds it, so the ledger tracks accepted
// reports only.
func (tr *tenantRegistry) spend(name string, eps float64) bool {
	t := tr.state(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr.limits.epsBudget > 0 && t.epsSpent+eps > tr.limits.epsBudget {
		t.budgetRefusals++
		return false
	}
	t.epsSpent += eps
	return true
}

// refund returns a reserved debit after a failed ingest.
func (tr *tenantRegistry) refund(name string, eps float64) {
	t := tr.state(name)
	t.mu.Lock()
	t.epsSpent -= eps
	t.mu.Unlock()
}

// snapshot copies every tenant's counters, sorted by name.
func (tr *tenantRegistry) snapshot() []tenantSnapshot {
	var all []tenantSnapshot
	tr.m.Range(func(_, v any) bool {
		t := v.(*tenantState)
		t.mu.Lock()
		all = append(all, tenantSnapshot{
			name: t.name, requests: t.requests, throttled: t.throttled,
			budgetRefusals: t.budgetRefusals, epsSpent: t.epsSpent,
		})
		t.mu.Unlock()
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	return all
}

// admit is the rate-limit middleware. Health and metrics stay exempt —
// a throttled tenant must not be able to blind the operator's probes.
func (s *Server) admit(next http.Handler) http.Handler {
	if s.tenants == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		tenant := tenantFrom(r)
		if !s.tenants.allow(tenant) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, codeRateLimited, "",
				"tenant %q is over its request rate limit (%g/s, burst %g)",
				tenant, s.tenants.limits.rate, s.tenants.limits.burst)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// debitReports reserves the ε a report batch spends (count reports at
// the column's per-report ε) against the request's tenant. It returns a
// release function the handler calls with ok=false to refund a failed
// ingest, or a write of the 429 refusal already done (release == nil).
func (s *Server) debitReports(w http.ResponseWriter, r *http.Request, column string, count int) (release func(ok bool), admitted bool) {
	if s.tenants == nil || s.tenants.limits.epsBudget <= 0 {
		return func(bool) {}, true
	}
	tenant := tenantFrom(r)
	eps := float64(count) * s.params.Epsilon
	if !s.tenants.spend(tenant, eps) {
		t := s.tenants.state(tenant)
		t.mu.Lock()
		spent := t.epsSpent
		t.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, codeBudgetExhausted, column,
			"tenant %q has spent ε=%g of its ε=%g budget; %d more reports at ε=%g would overrun it",
			tenant, spent, s.tenants.limits.epsBudget, count, s.params.Epsilon)
		return nil, false
	}
	return func(ok bool) {
		if !ok {
			s.tenants.refund(tenant, eps)
		}
	}, true
}
