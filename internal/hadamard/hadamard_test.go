package hadamard

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveTransform multiplies v by H_m the slow way using Entry.
func naiveTransform(v []float64) []float64 {
	n := len(v)
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += v[i] * float64(Entry(i, j))
		}
		out[j] = s
	}
	return out
}

func TestEntryMatchesRecursiveDefinition(t *testing.T) {
	// Build H_8 by the recursive doubling definition and compare entries.
	const m = 8
	h := [][]int{{1}}
	for len(h) < m {
		n := len(h)
		next := make([][]int, 2*n)
		for i := range next {
			next[i] = make([]int, 2*n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[i][j] = h[i][j]
				next[i][j+n] = h[i][j]
				next[i+n][j] = h[i][j]
				next[i+n][j+n] = -h[i][j]
			}
		}
		h = next
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if Entry(i, j) != h[i][j] {
				t.Fatalf("Entry(%d,%d) = %d, want %d", i, j, Entry(i, j), h[i][j])
			}
		}
	}
}

func TestEntrySymmetry(t *testing.T) {
	f := func(i, j uint16) bool {
		return Entry(int(i), int(j)) == Entry(int(j), int(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransformMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		want := naiveTransform(v)
		got := append([]float64(nil), v...)
		Transform(got)
		for i := range want {
			if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("n=%d: Transform[%d]=%g, naive=%g", n, i, got[i], want[i])
			}
		}
	}
}

// TestTransformInvolution checks H·H = m·I, the identity Algorithm 2 relies
// on to restore the sketch.
func TestTransformInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 128
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	w := append([]float64(nil), v...)
	Transform(w)
	Transform(w)
	for i := range v {
		if diff := w[i] - float64(n)*v[i]; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("involution failed at %d: got %g want %g", i, w[i], float64(n)*v[i])
		}
	}
}

// TestOrthogonalRows checks that distinct rows of H_m are orthogonal and
// each row has squared norm m — the property behind E[H[h,L]^2] = 1 in the
// debiasing proofs.
func TestOrthogonalRows(t *testing.T) {
	const m = 64
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			dot := 0
			for l := 0; l < m; l++ {
				dot += Entry(i, l) * Entry(j, l)
			}
			want := 0
			if i == j {
				want = m
			}
			if dot != want {
				t.Fatalf("row dot(%d,%d) = %d, want %d", i, j, dot, want)
			}
		}
	}
}

func TestTransformPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non power-of-two length")
		}
	}()
	Transform(make([]float64, 3))
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, c := range []struct {
		n    int
		want bool
	}{{0, false}, {1, true}, {2, true}, {3, false}, {4, true}, {1023, false}, {1024, true}, {-4, false}} {
		if got := IsPowerOfTwo(c.n); got != c.want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestRowMatchesEntry(t *testing.T) {
	const m = 32
	dst := make([]float64, m)
	for i := 0; i < m; i++ {
		Row(i, dst)
		for j := 0; j < m; j++ {
			if dst[j] != float64(Entry(i, j)) {
				t.Fatalf("Row(%d)[%d] = %g, want %d", i, j, dst[j], Entry(i, j))
			}
		}
	}
}

func BenchmarkTransform1024(b *testing.B) {
	v := make([]float64, 1024)
	for i := range v {
		v[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(v)
	}
}

func BenchmarkEntry(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Entry(i&1023, (i>>2)&1023)
	}
	_ = sink
}
