// Package hadamard implements the Hadamard transform used by the paper's
// client-side encoding (Algorithm 1) and the server-side sketch
// restoration (Algorithm 2).
//
// The order-m Hadamard matrix (m a power of two) is defined recursively by
// H_1 = [1], H_m = [[H_{m/2}, H_{m/2}], [H_{m/2}, -H_{m/2}]]. Its entries
// admit the closed form H_m[i][j] = (-1)^popcount(i AND j), which lets a
// client compute a single sampled coordinate of v × H_m in O(1) without
// materializing anything — the trick that makes LDPJoinSketch clients
// constant time. The server restores whole sketch rows with the O(m log m)
// fast Walsh–Hadamard transform.
package hadamard

import "math/bits"

// Entry returns H_m[i][j] = (-1)^popcount(i & j) for the implicit
// power-of-two order; the order does not appear because the closed form is
// order-independent as long as i, j are in range.
func Entry(i, j int) int {
	if bits.OnesCount64(uint64(i)&uint64(j))&1 == 0 {
		return 1
	}
	return -1
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Transform applies the in-place fast Walsh–Hadamard transform to v, i.e.
// v ← v × H_m with m = len(v). The length must be a power of two. The
// transform is its own inverse up to a factor m: Transform(Transform(v)) =
// m·v — which is exactly why Algorithm 2 multiplies by H_m^T (= H_m) to
// restore the sketch.
func Transform(v []float64) {
	n := len(v)
	if !IsPowerOfTwo(n) {
		panic("hadamard: length must be a power of two")
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := v[j], v[j+h]
				v[j], v[j+h] = x+y, x-y
			}
		}
	}
}

// Row writes the i-th row of H_m into dst (len(dst) = m). It is the
// reference implementation used by tests and the literal (materializing)
// client; production paths use Entry directly.
func Row(i int, dst []float64) {
	for j := range dst {
		dst[j] = float64(Entry(i, j))
	}
}
