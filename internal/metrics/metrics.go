// Package metrics implements the error metrics of the paper's evaluation
// (§VII-A): absolute error (AE), relative error (RE) and mean squared
// error (MSE), together with small accumulator helpers used by the
// experiment harness to average over testing rounds.
package metrics

import "math"

// AbsErr returns |truth − est|.
func AbsErr(truth, est float64) float64 { return math.Abs(truth - est) }

// RelErr returns |truth − est| / truth. A zero truth yields +Inf for a
// non-zero error and 0 for a perfect estimate, mirroring how the paper's
// plots treat degenerate rounds.
func RelErr(truth, est float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(truth-est) / math.Abs(truth)
}

// Accumulator averages AE and RE over repeated testing rounds: the paper's
// (1/t)Σ|J − Ĵ| and (1/t)Σ|J − Ĵ|/J.
type Accumulator struct {
	sumAE float64
	sumRE float64
	n     int
}

// Add records one round with the given true and estimated values.
func (a *Accumulator) Add(truth, est float64) {
	a.sumAE += AbsErr(truth, est)
	a.sumRE += RelErr(truth, est)
	a.n++
}

// Rounds returns the number of rounds recorded.
func (a *Accumulator) Rounds() int { return a.n }

// AE returns the mean absolute error over the recorded rounds.
func (a *Accumulator) AE() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sumAE / float64(a.n)
}

// RE returns the mean relative error over the recorded rounds.
func (a *Accumulator) RE() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sumRE / float64(a.n)
}

// MSEAccumulator averages squared frequency-estimation errors:
// (1/n)Σ_d (f(d) − f̃(d))² over the distinct values probed.
type MSEAccumulator struct {
	sum float64
	n   int
}

// Add records one value's true and estimated frequency.
func (m *MSEAccumulator) Add(truth, est float64) {
	d := truth - est
	m.sum += d * d
	m.n++
}

// Value returns the mean squared error.
func (m *MSEAccumulator) Value() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.sum / float64(m.n)
}

// Count returns the number of values recorded.
func (m *MSEAccumulator) Count() int { return m.n }
