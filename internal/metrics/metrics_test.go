package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAbsRelErr(t *testing.T) {
	if AbsErr(10, 7) != 3 || AbsErr(7, 10) != 3 {
		t.Fatal("AbsErr not symmetric around diff")
	}
	if RelErr(10, 7) != 0.3 {
		t.Fatalf("RelErr = %g, want 0.3", RelErr(10, 7))
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) should be 0")
	}
	if !math.IsInf(RelErr(0, 5), 1) {
		t.Fatal("RelErr(0,5) should be +Inf")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.AE()) || !math.IsNaN(a.RE()) {
		t.Fatal("empty accumulator should report NaN")
	}
	a.Add(100, 90)
	a.Add(100, 120)
	if a.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", a.Rounds())
	}
	if a.AE() != 15 {
		t.Fatalf("AE = %g, want 15", a.AE())
	}
	if math.Abs(a.RE()-0.15) > 1e-12 {
		t.Fatalf("RE = %g, want 0.15", a.RE())
	}
}

func TestMSEAccumulator(t *testing.T) {
	var m MSEAccumulator
	if !math.IsNaN(m.Value()) {
		t.Fatal("empty MSE should be NaN")
	}
	m.Add(10, 8)
	m.Add(10, 14)
	if m.Count() != 2 {
		t.Fatalf("count = %d, want 2", m.Count())
	}
	if m.Value() != (4+16)/2.0 {
		t.Fatalf("MSE = %g, want 10", m.Value())
	}
}

func TestErrNonNegativeProperty(t *testing.T) {
	f := func(truth, est float64) bool {
		if math.IsNaN(truth) || math.IsNaN(est) {
			return true
		}
		return AbsErr(truth, est) >= 0 && RelErr(truth, est) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectEstimatorZeroError(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return AbsErr(v, v) == 0 && RelErr(v, v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
