// Package join computes exact join sizes and frequency statistics. It is
// the ground truth every estimator in the repository is measured against:
// the join size of two attributes is the inner product of their frequency
// vectors, |A ⋈ B| = Σ_d f_A(d)·f_B(d), and chain multiway joins factor
// into sparse matrix-vector products over per-table frequency maps.
package join

// Frequencies returns the frequency map of data.
func Frequencies(data []uint64) map[uint64]int64 {
	f := make(map[uint64]int64)
	for _, d := range data {
		f[d]++
	}
	return f
}

// Size returns the exact join size |A ⋈ B| = Σ_d f_A(d)·f_B(d).
func Size(a, b []uint64) float64 {
	return SizeFromFreqs(Frequencies(a), Frequencies(b))
}

// SizeFromFreqs returns Σ_d fa(d)·fb(d), iterating the smaller map.
func SizeFromFreqs(fa, fb map[uint64]int64) float64 {
	if len(fb) < len(fa) {
		fa, fb = fb, fa
	}
	var s float64
	for d, ca := range fa {
		if cb, ok := fb[d]; ok {
			s += float64(ca) * float64(cb)
		}
	}
	return s
}

// F1 returns the first frequency moment of data: its length.
func F1(data []uint64) float64 { return float64(len(data)) }

// F2 returns the exact second frequency moment Σ_d f(d)².
func F2(data []uint64) float64 {
	var s float64
	for _, c := range Frequencies(data) {
		s += float64(c) * float64(c)
	}
	return s
}

// PairTable is a two-attribute table: column A joins to the left, column B
// to the right. Rows are (A[i], B[i]).
type PairTable struct {
	A []uint64
	B []uint64
}

// Len returns the number of rows.
func (t PairTable) Len() int { return len(t.A) }

// CycleSize returns the exact size of the 3-cycle join
// T1(A,B) ⋈ T2(B,C) ⋈ T3(C,A): the number of row triples (r1, r2, r3)
// with r1.B = r2.B, r2.C = r3.C and r3.A = r1.A. It is computed by
// grouping T1 by (A,B) and T3 by (C,A) and walking T2's rows:
// Σ_{r2} Σ_a f1(a, r2.B)·f3(r2.C, a).
func CycleSize(t1, t2, t3 PairTable) float64 {
	if len(t1.A) != len(t1.B) || len(t2.A) != len(t2.B) || len(t3.A) != len(t3.B) {
		panic("join: PairTable columns of unequal length")
	}
	// f1[b][a] = multiplicity of (A=a, B=b) in T1.
	f1 := make(map[uint64]map[uint64]float64)
	for i := range t1.A {
		inner := f1[t1.B[i]]
		if inner == nil {
			inner = make(map[uint64]float64)
			f1[t1.B[i]] = inner
		}
		inner[t1.A[i]]++
	}
	// f3[c][a] = multiplicity of (C=c, A=a) in T3.
	f3 := make(map[uint64]map[uint64]float64)
	for i := range t3.A {
		inner := f3[t3.A[i]]
		if inner == nil {
			inner = make(map[uint64]float64)
			f3[t3.A[i]] = inner
		}
		inner[t3.B[i]]++
	}
	var s float64
	for i := range t2.A {
		byA1 := f1[t2.A[i]] // rows of T1 with B = r2.B, keyed by A
		byA3 := f3[t2.B[i]] // rows of T3 with C = r2.C, keyed by A
		if len(byA1) == 0 || len(byA3) == 0 {
			continue
		}
		if len(byA3) < len(byA1) {
			byA1, byA3 = byA3, byA1
		}
		for a, c1 := range byA1 {
			if c3, ok := byA3[a]; ok {
				s += c1 * c3
			}
		}
	}
	return s
}

// ChainSize returns the exact size of the chain join
// left(A0) ⋈ mids[0](A0,A1) ⋈ ... ⋈ mids[n-1](A_{n-1},A_n) ⋈ right(A_n),
// computed by dynamic programming over frequency maps: O(total rows).
func ChainSize(left []uint64, mids []PairTable, right []uint64) float64 {
	v := make(map[uint64]float64, len(left))
	for _, d := range left {
		v[d]++
	}
	for _, t := range mids {
		if len(t.A) != len(t.B) {
			panic("join: PairTable columns of unequal length")
		}
		next := make(map[uint64]float64)
		for i := range t.A {
			if w, ok := v[t.A[i]]; ok && w != 0 {
				next[t.B[i]] += w
			}
		}
		v = next
	}
	var s float64
	for _, d := range right {
		s += v[d]
	}
	return s
}
