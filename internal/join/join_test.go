package join

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrequencies(t *testing.T) {
	f := Frequencies([]uint64{1, 2, 2, 3, 3, 3})
	if f[1] != 1 || f[2] != 2 || f[3] != 3 || len(f) != 3 {
		t.Fatalf("frequencies = %v", f)
	}
}

func TestSizeSmall(t *testing.T) {
	a := []uint64{1, 1, 2, 3}
	b := []uint64{1, 2, 2, 4}
	// f_A·f_B = 2*1 (value 1) + 1*2 (value 2) = 4.
	if got := Size(a, b); got != 4 {
		t.Fatalf("Size = %g, want 4", got)
	}
}

func TestSizeEmpty(t *testing.T) {
	if got := Size(nil, []uint64{1, 2}); got != 0 {
		t.Fatalf("empty join = %g, want 0", got)
	}
}

func TestSizeSymmetric(t *testing.T) {
	f := func(a, b []uint64) bool {
		for i := range a {
			a[i] %= 50
		}
		for i := range b {
			b[i] %= 50
		}
		return Size(a, b) == Size(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			a[i] = uint64(rng.Intn(20))
			b[i] = uint64(rng.Intn(20))
		}
		var brute float64
		for _, x := range a {
			for _, y := range b {
				if x == y {
					brute++
				}
			}
		}
		if got := Size(a, b); got != brute {
			t.Fatalf("Size = %g, brute force = %g", got, brute)
		}
	}
}

func TestMoments(t *testing.T) {
	data := []uint64{5, 5, 5, 7, 9}
	if F1(data) != 5 {
		t.Fatalf("F1 = %g, want 5", F1(data))
	}
	if F2(data) != 9+1+1 {
		t.Fatalf("F2 = %g, want 11", F2(data))
	}
}

func TestF2IsSelfJoin(t *testing.T) {
	f := func(raw []uint64) bool {
		for i := range raw {
			raw[i] %= 30
		}
		return F2(raw) == Size(raw, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChainSizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(60)
		t1 := make([]uint64, n)
		t3 := make([]uint64, n)
		t2 := PairTable{A: make([]uint64, n), B: make([]uint64, n)}
		for i := 0; i < n; i++ {
			t1[i] = uint64(rng.Intn(8))
			t3[i] = uint64(rng.Intn(8))
			t2.A[i] = uint64(rng.Intn(8))
			t2.B[i] = uint64(rng.Intn(8))
		}
		var brute float64
		for _, a := range t1 {
			for i := range t2.A {
				if t2.A[i] != a {
					continue
				}
				for _, c := range t3 {
					if c == t2.B[i] {
						brute++
					}
				}
			}
		}
		if got := ChainSize(t1, []PairTable{t2}, t3); got != brute {
			t.Fatalf("ChainSize = %g, brute = %g", got, brute)
		}
	}
}

func TestChainSizeNoMids(t *testing.T) {
	a := []uint64{1, 1, 2}
	b := []uint64{1, 2, 2}
	if got, want := ChainSize(a, nil, b), Size(a, b); got != want {
		t.Fatalf("ChainSize with no mids = %g, want Size = %g", got, want)
	}
}

func TestChainSizePanicsOnRaggedTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ChainSize([]uint64{1}, []PairTable{{A: []uint64{1}, B: nil}}, []uint64{1})
}

func TestPairTableLen(t *testing.T) {
	pt := PairTable{A: []uint64{1, 2}, B: []uint64{3, 4}}
	if pt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pt.Len())
	}
}
