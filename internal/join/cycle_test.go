package join

import (
	"math/rand"
	"testing"
)

func TestCycleSizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(40)
		mk := func() PairTable {
			pt := PairTable{A: make([]uint64, n), B: make([]uint64, n)}
			for i := 0; i < n; i++ {
				pt.A[i] = uint64(rng.Intn(6))
				pt.B[i] = uint64(rng.Intn(6))
			}
			return pt
		}
		t1, t2, t3 := mk(), mk(), mk()
		var brute float64
		for i := range t1.A {
			for j := range t2.A {
				if t1.B[i] != t2.A[j] {
					continue
				}
				for l := range t3.A {
					if t2.B[j] == t3.A[l] && t3.B[l] == t1.A[i] {
						brute++
					}
				}
			}
		}
		if got := CycleSize(t1, t2, t3); got != brute {
			t.Fatalf("trial %d: CycleSize = %g, brute = %g", trial, got, brute)
		}
	}
}

func TestCycleSizeEmpty(t *testing.T) {
	empty := PairTable{}
	if got := CycleSize(empty, empty, empty); got != 0 {
		t.Fatalf("empty cycle = %g", got)
	}
}

func TestCycleSizePanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CycleSize(PairTable{A: []uint64{1}}, PairTable{}, PairTable{})
}
