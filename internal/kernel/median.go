package kernel

import "math"

// MedianInPlace sorts v in place and returns its median, averaging the
// middle pair for even lengths — sketch.Median without the defensive
// copy, for callers that own a scratch buffer. Insertion sort: v is a
// row-estimate vector of length K (single to low double digits), where
// insertion sort beats the sort package's interface dispatch and never
// allocates. For finite inputs the sorted order — and therefore the
// median — matches sort.Float64s exactly.
func MedianInPlace(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// Mean returns the arithmetic mean of v.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
