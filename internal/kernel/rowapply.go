package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RowApply invokes fn(j) for every j in [0, n), spreading the calls
// across up to GOMAXPROCS goroutines. The rows are claimed from a
// shared atomic counter, so uneven row costs balance automatically; the
// calling goroutine participates instead of parking, which makes the
// single-row and single-CPU cases run inline with zero goroutine
// overhead. RowApply returns after every fn call has returned.
//
// fn is called concurrently from multiple goroutines and must therefore
// only touch row-local state (the aggregator rows and matrix replicas
// it is used on are independent by construction). Results must not
// depend on call order — for the finalize and FI-scan kernels they
// cannot, since each row's computation reads and writes only that row.
func RowApply(n int, fn func(j int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for j := 0; j < n; j++ {
			fn(j)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		//ldpjoinvet:ignore hotalloc one spawn per worker, amortized over the whole row sweep; inline path above handles the small-n case
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= n {
					return
				}
				fn(j)
			}
		}()
	}
	for {
		j := int(next.Add(1)) - 1
		if j >= n {
			break
		}
		fn(j)
	}
	wg.Wait()
}
