package kernel

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/sketch"
)

// naiveDot is the reference sequential inner product (sketch.Dot's
// loop, duplicated here so the pin does not move if the reference
// package ever adopts the kernel).
func naiveDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// randVec draws a length-n vector of integer-valued cells in the range
// unfinalized sketch state actually holds (sums of ±1 contributions).
func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(rng.Intn(2001) - 1000)
	}
	return v
}

// TestFWHTBitExact pins the radix-4 kernel to the naive radix-2
// butterfly with exact (==) equality across every power-of-two length
// through 4× the cache block, on integer-valued and on fractional
// state. This is the guarantee federation and the golden SNAP/PSNP
// testdata lean on: a sketch finalized through the kernel is
// byte-identical to one finalized through hadamard.Transform.
func TestFWHTBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 4*fwhtBlock; n <<= 1 {
		for trial := 0; trial < 4; trial++ {
			want := randVec(rng, n)
			if trial%2 == 1 { // fractional cells (post-scale magnitudes)
				for i := range want {
					want[i] *= 1.375e3
				}
			}
			got := append([]float64(nil), want...)
			hadamard.Transform(want)
			FWHT(got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d: FWHT[%d] = %v, naive %v", n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFWHTScaledBitExact pins the fused scale+transform against
// scale-then-naive-transform, exactly — the Finalize path's identity.
func TestFWHTScaledBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 4*fwhtBlock; n <<= 1 {
		for _, c := range []float64{1, 2.5, 18 * 1.0398, -0.125} {
			want := randVec(rng, n)
			got := append([]float64(nil), want...)
			for i := range want {
				want[i] *= c
			}
			hadamard.Transform(want)
			FWHTScaled(got, c)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d c=%v: FWHTScaled[%d] = %v, naive %v", n, c, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFWHTInvolution checks the defining property on the kernel alone:
// FWHT(FWHT(v)) = m·v, exactly, for integer-valued v (every
// intermediate is an integer sum well within float64 exactness).
func TestFWHTInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 1024; n <<= 1 {
		orig := randVec(rng, n)
		v := append([]float64(nil), orig...)
		FWHT(v)
		FWHT(v)
		for i := range v {
			if v[i] != float64(n)*orig[i] {
				t.Fatalf("n=%d: double transform[%d] = %v, want %v", n, i, v[i], float64(n)*orig[i])
			}
		}
	}
}

// TestDotProperty pins Dot and DotShifted against the sequential
// reference within floating-point reassociation tolerance, over
// quick-generated vectors.
func TestDotProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(func(pairs []struct{ A, B int16 }, caRaw, cbRaw int16) bool {
		a := make([]float64, len(pairs))
		b := make([]float64, len(pairs))
		var scale float64
		for i, p := range pairs {
			a[i], b[i] = float64(p.A), float64(p.B)
			scale += math.Abs(a[i]*b[i]) + 1
		}
		ca, cb := float64(caRaw)/8, float64(cbRaw)/8
		if d := Dot(a, b); math.Abs(d-naiveDot(a, b)) > 1e-9*scale {
			return false
		}
		want := 0.0
		for i := range a {
			want += (a[i] - ca) * (b[i] - cb)
		}
		shiftScale := scale + float64(len(a))*(math.Abs(ca)+1)*(math.Abs(cb)+1)*1e3
		return math.Abs(DotShifted(a, b, ca, cb)-want) <= 1e-9*shiftScale
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDotShiftedMatchesMinusConstant checks the algebraic identity the
// plus join path relies on: DotShifted equals the dot of the two
// shifted copies (same subtract-then-multiply per element).
func TestDotShiftedMatchesMinusConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 3, 4, 7, 64, 513} {
		a, b := randVec(rng, n), randVec(rng, n)
		ca, cb := rng.Float64()*10, rng.Float64()*10
		sa := make([]float64, n)
		sb := make([]float64, n)
		for i := 0; i < n; i++ {
			sa[i], sb[i] = a[i]-ca, b[i]-cb
		}
		want := naiveDot(sa, sb)
		got := DotShifted(a, b, ca, cb)
		tol := 1e-9 * (math.Abs(want) + 1)
		if math.Abs(got-want) > tol {
			t.Fatalf("n=%d: DotShifted = %v, shifted naive dot %v", n, got, want)
		}
	}
}

// TestScale pins Scale against the per-element multiply, exactly.
func TestScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 3, 4, 7, 100} {
		v := randVec(rng, n)
		want := make([]float64, n)
		for i := range v {
			want[i] = v[i] * 3.25
		}
		Scale(v, 3.25)
		for i := range v {
			if v[i] != want[i] {
				t.Fatalf("n=%d: Scale[%d] = %v, want %v", n, i, v[i], want[i])
			}
		}
	}
}

// TestMedianInPlace pins MedianInPlace against sketch.Median (which
// copies and uses sort.Float64s), exactly, including even lengths and
// duplicates.
func TestMedianInPlace(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(func(raw []int16) bool {
		v := make([]float64, len(raw))
		for i, x := range raw {
			v[i] = float64(x % 8) // force duplicates
		}
		want := sketch.Median(v)
		got := MedianInPlace(v)
		if len(raw) == 0 {
			return math.IsNaN(got) && math.IsNaN(want)
		}
		return got == want && sort.Float64sAreSorted(v)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRowApply checks completeness (every row exactly once) and that
// results do not depend on GOMAXPROCS-driven scheduling.
func TestRowApply(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]atomic.Int32, n)
		RowApply(n, func(j int) { hits[j].Add(1) })
		for j := range hits {
			if got := hits[j].Load(); got != 1 {
				t.Fatalf("n=%d: row %d applied %d times", n, j, got)
			}
		}
	}
}

// TestRowApplyParallelFWHT is the race-detector canary for the parallel
// finalize shape: many rows transformed concurrently must equal the
// serial result exactly.
func TestRowApplyParallelFWHT(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const k, m = 32, 256
	rows := make([][]float64, k)
	want := make([][]float64, k)
	for j := range rows {
		rows[j] = randVec(rng, m)
		want[j] = append([]float64(nil), rows[j]...)
		hadamard.Transform(want[j])
	}
	RowApply(k, func(j int) { FWHTScaled(rows[j], 1) })
	for j := range rows {
		for i := range rows[j] {
			if rows[j][i] != want[j][i] {
				t.Fatalf("row %d cell %d: %v != %v", j, i, rows[j][i], want[j][i])
			}
		}
	}
}
