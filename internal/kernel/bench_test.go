package kernel

import (
	"math/rand"
	"testing"

	"ldpjoin/internal/hadamard"
)

// BenchmarkFWHT measures one row restore at the default deployment
// width (m = 1024) — the unit Algorithm 2 finalization repeats K times
// per column. The naive sub-benchmark is the pre-kernel butterfly, kept
// so the BENCH trajectory records the spread, not just the winner.
func BenchmarkFWHT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := randVec(rng, 1024)
	b.Run("radix4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			FWHT(v)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hadamard.Transform(v)
		}
	})
	b.Run("scaled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			FWHTScaled(v, 1.0000001)
		}
	})
}

// BenchmarkDot measures one row inner product at m = 1024 — the unit a
// join estimate repeats K times. naive is the sequential reference loop.
func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randVec(rng, 1024), randVec(rng, 1024)
	var sink float64
	b.Run("unrolled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += Dot(x, y)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += naiveDot(x, y)
		}
	})
	b.Run("shifted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += DotShifted(x, y, 0.25, 0.5)
		}
	})
	_ = sink
}
