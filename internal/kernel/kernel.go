// Package kernel is the hot-path numeric layer of the server side: the
// small set of dense-vector primitives every estimate and finalization
// reduces to, written to be allocation-free and fast on stock hardware
// without leaving pure Go.
//
// The paper's server is pure numerics — Algorithm 2 finalization is K
// row-wise O(m log m) Walsh–Hadamard transforms, a join estimate is K
// M-cell dot products, and LDPJoinSketch+ phase 1 is an O(domain·K)
// frequency scan — so these loops are where the serving CPU goes. The
// package provides:
//
//   - FWHT / FWHTScaled: cache-blocked radix-4 fast Walsh–Hadamard
//     transform, bit-exact with the textbook radix-2 butterfly
//     (hadamard.Transform) because fusing two radix-2 stages performs
//     the same additions on the same operands. Bit-exactness is a hard
//     requirement, not a nicety: finalized sketches are persisted and
//     federated byte-identically, so the transform must produce the
//     same float64s on every code path and every release.
//   - Dot / DotShifted: 4-accumulator unrolled inner products.
//     DotShifted folds a per-operand constant offset into the loop —
//     the Theorem 8 |NT|/m subtraction — so the plus-join path needs no
//     shifted copy of either sketch.
//   - Scale: fused constant multiply.
//   - RowApply: a bounded-worker parallel for-loop over independent
//     rows (replicas), used by finalization and the FI scan.
//   - MedianInPlace: the row-median reduction without the copy
//     sketch.Median makes.
//
// Dot products and medians feed estimates (query results), not
// persisted state, so they are free to reassociate; only the transforms
// are pinned bit-exact (TestFWHTBitExact).
package kernel

// Dot returns the inner product of two equal-length vectors using four
// independent accumulators, which breaks the add-to-add dependency
// chain and lets the CPU pipeline the multiplies. The summation order
// differs from a sequential loop, so results may differ from a naive
// dot in the last few ulps — fine for estimates, which are statistical
// to begin with.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("kernel: Dot of mismatched lengths")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa, bb := a[i:i+4:i+4], b[i:i+4:i+4]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s2) + (s1 + s3)
}

// DotShifted returns Σ_i (a[i]-ca)·(b[i]-cb) without materializing the
// shifted vectors: the allocation-free replacement for
// MinusConstant(ca).JoinSize(MinusConstant(cb)) on the plus-join path
// (Algorithm 5's |NT|/m subtraction, Theorem 8). Each term is computed
// exactly as the copying path computes it — subtract, then multiply —
// only the summation is reassociated across the four accumulators.
func DotShifted(a, b []float64, ca, cb float64) float64 {
	if len(a) != len(b) {
		panic("kernel: DotShifted of mismatched lengths")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa, bb := a[i:i+4:i+4], b[i:i+4:i+4]
		s0 += (aa[0] - ca) * (bb[0] - cb)
		s1 += (aa[1] - ca) * (bb[1] - cb)
		s2 += (aa[2] - ca) * (bb[2] - cb)
		s3 += (aa[3] - ca) * (bb[3] - cb)
	}
	for ; i < len(a); i++ {
		s0 += (a[i] - ca) * (b[i] - cb)
	}
	return (s0 + s2) + (s1 + s3)
}

// Scale multiplies every element of v by c in place.
func Scale(v []float64, c float64) {
	i := 0
	for ; i+4 <= len(v); i += 4 {
		vv := v[i : i+4 : i+4]
		vv[0] *= c
		vv[1] *= c
		vv[2] *= c
		vv[3] *= c
	}
	for ; i < len(v); i++ {
		v[i] *= c
	}
}
