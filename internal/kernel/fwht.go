package kernel

// fwhtBlock is the cache-block span in float64s (32 KiB): a row longer
// than this runs its low stages block-local first, so every butterfly
// of those stages touches memory that is already cache-resident,
// before the high stages stride across blocks. Blocking reorders only
// the execution schedule, never the dataflow — each butterfly still
// combines exactly the same two values — so blocked and unblocked
// output are bit-identical.
const fwhtBlock = 4096

// FWHT applies the in-place fast Walsh–Hadamard transform, v ← v × H_m
// with m = len(v) (a power of two). It is bit-exact with the naive
// radix-2 butterfly (hadamard.Transform): radix-4 fusion performs the
// same additions on the same operands, merely skipping the intermediate
// store, and IEEE 754 operations are deterministic functions of their
// operands. Persisted and federated state may therefore finalize
// through either implementation interchangeably.
func FWHT(v []float64) {
	n := len(v)
	if n == 0 || n&(n-1) != 0 {
		panic("kernel: FWHT length must be a power of two")
	}
	if n <= fwhtBlock {
		fwhtStages(v, 1)
		return
	}
	for i := 0; i < n; i += fwhtBlock {
		fwhtStages(v[i:i+fwhtBlock], 1)
	}
	fwhtStages(v, fwhtBlock)
}

// FWHTScaled computes FWHT(c·v): the debias-scale-then-restore step of
// Algorithm 2 finalization in one pass. The scale is folded into the
// loads of the first butterfly stage, so every element is still
// multiplied by c exactly once before any addition touches it — the
// result is bit-identical to Scale(v, c) followed by FWHT(v).
func FWHTScaled(v []float64, c float64) {
	n := len(v)
	if n == 0 || n&(n-1) != 0 {
		panic("kernel: FWHTScaled length must be a power of two")
	}
	switch n {
	case 1:
		v[0] *= c
		return
	case 2:
		x, y := v[0]*c, v[1]*c
		v[0], v[1] = x+y, x-y
		return
	}
	if n <= fwhtBlock {
		fwhtScaledStage12(v, c)
		fwhtStages(v, 4)
		return
	}
	for i := 0; i < n; i += fwhtBlock {
		blk := v[i : i+fwhtBlock]
		fwhtScaledStage12(blk, c)
		fwhtStages(blk, 4)
	}
	fwhtStages(v, fwhtBlock)
}

// fwhtScaledStage12 runs the fused h=1,2 butterfly stages with each
// load pre-multiplied by c. len(v) must be a multiple of 4.
func fwhtScaledStage12(v []float64, c float64) {
	for i := 0; i < len(v); i += 4 {
		vv := v[i : i+4 : i+4]
		x0, x1, x2, x3 := vv[0]*c, vv[1]*c, vv[2]*c, vv[3]*c
		a0, a1 := x0+x1, x0-x1
		b0, b1 := x2+x3, x2-x3
		vv[0], vv[1], vv[2], vv[3] = a0+b0, a1+b1, a0-b0, a1-b1
	}
}

// fwhtStages performs the butterfly stages h = h0, 2·h0, 4·h0, … up to
// len(v)/2, fusing adjacent stage pairs radix-4 (one lone radix-2
// stage absorbs an odd stage count). Fusion never changes arithmetic:
// the radix-4 body computes the two radix-2 stages' additions on
// identical operands, keeping the intermediates in registers.
func fwhtStages(v []float64, h0 int) {
	n := len(v)
	for h := h0; h < n; {
		if h<<1 < n {
			// Radix-4: stages h and 2h over each 4h-aligned group.
			h4 := h << 2
			for i := 0; i < n; i += h4 {
				v0 := v[i : i+h : i+h]
				v1 := v[i+h : i+2*h : i+2*h]
				v2 := v[i+2*h : i+3*h : i+3*h]
				v3 := v[i+3*h : i+4*h : i+4*h]
				for j := range v0 {
					a0, a1 := v0[j]+v1[j], v0[j]-v1[j]
					b0, b1 := v2[j]+v3[j], v2[j]-v3[j]
					v0[j], v1[j] = a0+b0, a1+b1
					v2[j], v3[j] = a0-b0, a1-b1
				}
			}
			h = h4
			continue
		}
		// Lone radix-2 stage (h = n/2).
		for i := 0; i < n; i += h << 1 {
			v0 := v[i : i+h : i+h]
			v1 := v[i+h : i+2*h : i+2*h]
			for j := range v0 {
				x, y := v0[j], v1[j]
				v0[j], v1[j] = x+y, x-y
			}
		}
		h <<= 1
	}
}
