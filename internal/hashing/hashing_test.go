package hashing

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMulModMatchesBigIntSemantics(t *testing.T) {
	// Cross-check fast Mersenne reduction against 128-bit long division.
	cases := [][2]uint64{
		{0, 0},
		{1, 1},
		{MersennePrime61 - 1, MersennePrime61 - 1},
		{MersennePrime61 - 1, 2},
		{123456789, 987654321},
		{1 << 60, 1 << 60},
		{MersennePrime61 / 2, MersennePrime61 / 3},
	}
	for _, c := range cases {
		got := mulMod(c[0], c[1])
		hi, lo := bits.Mul64(c[0], c[1])
		_, want := bits.Div64(hi%MersennePrime61, lo, MersennePrime61)
		if got != want {
			t.Errorf("mulMod(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestMulModPropertyAgainstDiv64(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		hi, lo := bits.Mul64(a, b)
		_, want := bits.Div64(hi%MersennePrime61, lo, MersennePrime61)
		return mulMod(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddModStaysInField(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		r := addMod(a, b)
		return r < MersennePrime61 && r == (a+b)%MersennePrime61
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyHashDeterministic(t *testing.T) {
	s1 := uint64(42)
	s2 := uint64(42)
	p1 := NewPolyHash(&s1)
	p2 := NewPolyHash(&s2)
	for x := uint64(0); x < 1000; x++ {
		if p1.Eval(x) != p2.Eval(x) {
			t.Fatalf("same seed produced different hashes at x=%d", x)
		}
	}
}

func TestPolyHashInRange(t *testing.T) {
	s := uint64(7)
	p := NewPolyHash(&s)
	f := func(x uint64) bool { return p.Eval(x) < MersennePrime61 }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPairBucketRangeAndSign(t *testing.T) {
	s := uint64(99)
	for _, m := range []int{1, 2, 16, 1024, 1000} {
		p := NewPair(&s, m)
		for x := uint64(0); x < 2000; x++ {
			b := p.Bucket(x)
			if b < 0 || b >= m {
				t.Fatalf("bucket %d out of range [0,%d)", b, m)
			}
			if sg := p.Sign(x); sg != 1 && sg != -1 {
				t.Fatalf("sign %d not in {-1,+1}", sg)
			}
		}
	}
}

func TestNewPairPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m=0")
		}
	}()
	s := uint64(1)
	NewPair(&s, 0)
}

func TestNewFamilyPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewFamily(1, 0, 16)
}

// TestSignBalance checks that the sign hash is close to balanced over a
// contiguous domain: a structural bias here would skew every estimator in
// the repository.
func TestSignBalance(t *testing.T) {
	fam := NewFamily(12345, 8, 1024)
	const n = 20000
	for j := 0; j < fam.K(); j++ {
		sum := 0
		for x := uint64(0); x < n; x++ {
			sum += fam.Sign(j, x)
		}
		// Std dev of the sum is sqrt(n) ≈ 141; allow 5 sigma.
		if sum > 707 || sum < -707 {
			t.Errorf("row %d: sign sum %d exceeds 5 sigma bound", j, sum)
		}
	}
}

// TestBucketUniformity performs a coarse chi-square check of bucket
// uniformity across a small m.
func TestBucketUniformity(t *testing.T) {
	const m = 16
	const n = 32000
	fam := NewFamily(777, 4, m)
	for j := 0; j < fam.K(); j++ {
		counts := make([]int, m)
		for x := uint64(0); x < n; x++ {
			counts[fam.Bucket(j, x)]++
		}
		expected := float64(n) / m
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 15 degrees of freedom; 99.9th percentile ≈ 37.7. Allow slack.
		if chi2 > 45 {
			t.Errorf("row %d: chi-square %.1f too large for uniform buckets", j, chi2)
		}
	}
}

// TestFourWiseSignProducts verifies the defining property the variance
// proofs rely on: E[ξ(a)ξ(b)] ≈ 0 and E[ξ(a)ξ(b)ξ(c)ξ(d)] ≈ 0 for distinct
// points, averaged over random family draws.
func TestFourWiseSignProducts(t *testing.T) {
	const trials = 4000
	state := uint64(31415)
	sum2, sum4 := 0, 0
	for i := 0; i < trials; i++ {
		p := NewPair(&state, 4)
		sum2 += p.Sign(1) * p.Sign(2)
		sum4 += p.Sign(1) * p.Sign(2) * p.Sign(3) * p.Sign(4)
	}
	// Std dev ≈ sqrt(trials) ≈ 63; allow 5 sigma ≈ 316.
	if sum2 > 316 || sum2 < -316 {
		t.Errorf("pairwise sign product sum %d deviates from 0", sum2)
	}
	if sum4 > 316 || sum4 < -316 {
		t.Errorf("4-wise sign product sum %d deviates from 0", sum4)
	}
}

func TestFamilyAccessors(t *testing.T) {
	fam := NewFamily(5, 3, 64)
	if fam.K() != 3 || fam.M() != 64 || fam.Seed() != 5 {
		t.Fatalf("accessors mismatch: k=%d m=%d seed=%d", fam.K(), fam.M(), fam.Seed())
	}
	if fam.Pair(1).M() != 64 {
		t.Fatalf("pair M mismatch")
	}
	// Pair accessors agree with family-level shortcuts.
	for j := 0; j < fam.K(); j++ {
		for x := uint64(0); x < 100; x++ {
			if fam.Bucket(j, x) != fam.Pair(j).Bucket(x) {
				t.Fatal("Bucket shortcut disagrees with Pair")
			}
			if fam.Sign(j, x) != fam.Pair(j).Sign(x) {
				t.Fatal("Sign shortcut disagrees with Pair")
			}
		}
	}
}

func TestFamiliesWithDifferentSeedsDiffer(t *testing.T) {
	a := NewFamily(1, 2, 1024)
	b := NewFamily(2, 2, 1024)
	same := true
	for x := uint64(0); x < 64 && same; x++ {
		if a.Bucket(0, x) != b.Bucket(0, x) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical bucket functions")
	}
}

func TestSplitMix64KnownSequenceDistinct(t *testing.T) {
	state := uint64(0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := SplitMix64(&state)
		if seen[v] {
			t.Fatalf("splitmix64 repeated value within 1000 draws")
		}
		seen[v] = true
	}
}

func BenchmarkPolyHashEval(b *testing.B) {
	s := uint64(1)
	p := NewPolyHash(&s)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= p.Eval(uint64(i))
	}
	_ = sink
}

func BenchmarkPairBucketSign(b *testing.B) {
	s := uint64(1)
	p := NewPair(&s, 1024)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += p.Bucket(uint64(i)) + p.Sign(uint64(i))
	}
	_ = sink
}
