// Package hashing provides the k-wise independent hash families that every
// sketch in this repository is built on.
//
// The sketches of the paper (fast-AGMS, LDPJoinSketch, HCMS, ...) require,
// for each sketch row j, a pair of hash functions:
//
//   - a bucket function h_j: D -> [0, m-1] that selects a counter, and
//   - a sign function ξ_j: D -> {-1, +1} drawn from a 4-wise independent
//     family (4-wise independence is what makes the variance analysis of
//     the inner-product estimator go through).
//
// Both are realized as degree-3 polynomials over the Mersenne prime field
// GF(2^61-1), which is the textbook construction for 4-wise independence
// and is fast: reduction modulo 2^61-1 needs only shifts and adds.
package hashing

import (
	"math/bits"
)

// MersennePrime61 is the field modulus 2^61 - 1 used by all polynomial
// hashes in this package.
const MersennePrime61 = (uint64(1) << 61) - 1

// mulMod returns a*b mod 2^61-1 for a, b < 2^61-1.
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// The 128-bit product is hi*2^64 + lo. Since 2^64 ≡ 2^3 (mod 2^61-1)
	// and hi < 2^58 (because a, b < 2^61), hi<<3 does not overflow.
	r := (lo & MersennePrime61) + (lo >> 61) + (hi << 3)
	r = (r & MersennePrime61) + (r >> 61)
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	return r
}

// addMod returns a+b mod 2^61-1 for a, b < 2^61-1.
func addMod(a, b uint64) uint64 {
	r := a + b
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	return r
}

// SplitMix64 advances the splitmix64 state and returns the next value.
// It is the seeding PRNG used throughout the repository to derive
// independent sub-seeds from a master seed deterministically.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PolyHash is a degree-3 polynomial hash over GF(2^61-1), giving a 4-wise
// independent family. The zero value is not usable; construct with
// NewPolyHash.
type PolyHash struct {
	// c holds the polynomial coefficients c0 + c1*x + c2*x^2 + c3*x^3.
	c [4]uint64
}

// NewPolyHash draws a random member of the 4-wise independent family using
// the given splitmix64 state. The leading coefficient is forced non-zero so
// the polynomial has full degree.
func NewPolyHash(state *uint64) PolyHash {
	var p PolyHash
	for i := range p.c {
		p.c[i] = SplitMix64(state) % MersennePrime61
	}
	if p.c[3] == 0 {
		p.c[3] = 1
	}
	return p
}

// Eval evaluates the polynomial at x, returning a value uniform in
// [0, 2^61-1) over the choice of coefficients.
func (p PolyHash) Eval(x uint64) uint64 {
	x %= MersennePrime61
	// Horner's rule: ((c3*x + c2)*x + c1)*x + c0.
	r := p.c[3]
	r = addMod(mulMod(r, x), p.c[2])
	r = addMod(mulMod(r, x), p.c[1])
	r = addMod(mulMod(r, x), p.c[0])
	return r
}

// Pair bundles the (h_j, ξ_j) hash pair for one sketch row: Bucket plays
// h_j and Sign plays ξ_j. The two are drawn independently.
type Pair struct {
	bucket PolyHash
	sign   PolyHash
	m      uint64
}

// NewPair draws an independent (bucket, sign) pair with bucket range
// [0, m). m must be positive.
func NewPair(state *uint64, m int) Pair {
	if m <= 0 {
		panic("hashing: bucket range m must be positive")
	}
	return Pair{
		bucket: NewPolyHash(state),
		sign:   NewPolyHash(state),
		m:      uint64(m),
	}
}

// Bucket returns h(d) in [0, m).
func (p Pair) Bucket(d uint64) int {
	return int(p.bucket.Eval(d) % p.m)
}

// Sign returns ξ(d) in {-1, +1}.
func (p Pair) Sign(d uint64) int {
	// The low bit of a uniform value in [0, 2^61-1) is unbiased up to
	// O(2^-61), far below anything measurable.
	if p.sign.Eval(d)&1 == 0 {
		return 1
	}
	return -1
}

// M returns the bucket range.
func (p Pair) M() int { return int(p.m) }

// AttributeSeed derives the hash-family seed of join attribute attr from
// a deployment's base seed. Every participant of a multi-way join — the
// chain-protocol facade, the aggregation service, the federator — uses
// this one derivation, so a sketch built for attribute i on any of them
// is combinable with one built for attribute i on any other. Attribute 0
// is the base seed itself, which keeps single-attribute deployments (and
// their persisted state) valid as attribute-0 state of a chain.
func AttributeSeed(seed int64, attr int) int64 {
	return seed + int64(attr)*0x9e37
}

// Family is the ordered collection of k (h_j, ξ_j) pairs shared by the two
// endpoints of a join: sketches can only be combined when built from the
// same Family, exactly as the paper requires the same hash functions on
// both attributes.
type Family struct {
	pairs []Pair
	seed  int64
	m     int
}

// NewFamily derives k independent pairs with bucket range [0, m) from the
// master seed. The derivation is deterministic: equal (seed, k, m) yields
// an identical family.
func NewFamily(seed int64, k, m int) *Family {
	if k <= 0 {
		panic("hashing: family size k must be positive")
	}
	state := uint64(seed) ^ 0x9e3779b97f4a7c15
	pairs := make([]Pair, k)
	for j := range pairs {
		pairs[j] = NewPair(&state, m)
	}
	return &Family{pairs: pairs, seed: seed, m: m}
}

// K returns the number of rows (hash pairs).
func (f *Family) K() int { return len(f.pairs) }

// M returns the bucket range shared by all pairs.
func (f *Family) M() int { return f.m }

// Seed returns the master seed the family was derived from.
func (f *Family) Seed() int64 { return f.seed }

// Pair returns the j-th (h_j, ξ_j) pair.
func (f *Family) Pair(j int) Pair { return f.pairs[j] }

// Bucket returns h_j(d).
func (f *Family) Bucket(j int, d uint64) int { return f.pairs[j].Bucket(d) }

// Sign returns ξ_j(d).
func (f *Family) Sign(j int, d uint64) int { return f.pairs[j].Sign(d) }
